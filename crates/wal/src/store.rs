//! The per-replica segment store: append, fsync policy, rotation,
//! compaction, and disk-first recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use consensus_types::{Command, ExecutionCursor};
use telemetry::{Counter, Histogram, Registry};

use crate::record::{
    decode_record, encode_checkpoint, encode_command, encode_cursor, DecodeOutcome, WalRecord,
};

/// Bytes of per-segment preamble: the magic `WALSEG01`.
pub const SEGMENT_MAGIC: &[u8; 8] = b"WALSEG01";

/// When a replica must persist its log to the disk's platter, not just the
/// page cache.
///
/// Records are always *written* (visible to the OS) before client replies are
/// flushed, so a process crash never loses acknowledged commands under any
/// policy; the policy only chooses how much a full power loss can take back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record. Maximum durability, one disk
    /// flush per command.
    PerRecord,
    /// `fsync` once per apply batch, after the batch's records are written
    /// and before the batch's client replies go out. The default: replies
    /// never outrun the platter, and the flush cost amortizes across the
    /// batch.
    PerBatch,
    /// `fsync` at most once per interval, at the next batch boundary after
    /// it elapses. Replies can outrun the platter by up to one interval —
    /// a power loss inside the window can forget acknowledged commands.
    Interval(Duration),
}

impl FsyncPolicy {
    /// Short lowercase label used in bench output and stats displays.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::PerRecord => "per-record",
            FsyncPolicy::PerBatch => "per-batch",
            FsyncPolicy::Interval(_) => "interval",
        }
    }
}

/// Configuration for opening a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding this replica's segment files; created if absent.
    pub dir: PathBuf,
    /// When appends reach the platter (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes, even between checkpoints. Recovery scans all segments in
    /// order, so mid-suffix rotation is purely a file-size bound.
    pub segment_max_bytes: u64,
}

impl WalConfig {
    /// Config with the default per-batch fsync policy and 64 MiB segments.
    #[must_use]
    pub fn new(dir: PathBuf) -> Self {
        Self { dir, fsync: FsyncPolicy::PerBatch, segment_max_bytes: 64 * 1024 * 1024 }
    }

    /// Replaces the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replaces the segment size bound.
    #[must_use]
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }
}

/// `wal.*` metrics, registered in the replica's telemetry [`Registry`].
#[derive(Debug, Clone)]
pub struct WalStats {
    /// Records appended (commands, cursor marks and checkpoints).
    pub appends: Counter,
    /// Framed bytes written to segment files.
    pub bytes_written: Counter,
    /// `fsync` calls issued by the active policy (and checkpoint barriers).
    pub fsyncs: Counter,
    /// Latency of each `fsync`, in microseconds.
    pub fsync_us: Histogram,
    /// Segments opened after the first (size rotations + checkpoint cuts).
    pub rotations: Counter,
    /// Obsolete segment files deleted after a durable checkpoint.
    pub compactions: Counter,
    /// Torn or corrupt tails truncated during recovery.
    pub torn_truncations: Counter,
    /// Checkpoint records written.
    pub checkpoints: Counter,
    /// Suffix commands recovered from disk and handed back for replay.
    pub replayed: Counter,
}

impl WalStats {
    /// Registers (or re-attaches to) the log's counters in `registry`.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self {
            appends: registry.counter("wal.appends"),
            bytes_written: registry.counter("wal.bytes_written"),
            fsyncs: registry.counter("wal.fsyncs"),
            fsync_us: registry.histogram("wal.fsync_us"),
            rotations: registry.counter("wal.rotations"),
            compactions: registry.counter("wal.compactions"),
            torn_truncations: registry.counter("wal.torn_truncations"),
            checkpoints: registry.counter("wal.checkpoints"),
            replayed: registry.counter("wal.replayed"),
        }
    }
}

/// What a scan of the segment files found — the disk-first resume point.
///
/// The consumer restores the checkpoint (the same serialized payload a
/// snapshot donor would send), replays `suffix` in order, then merges
/// `cursor` over the checkpoint's embedded cursor to land exactly where the
/// replica left off.
#[derive(Debug)]
pub struct Recovery {
    /// The latest durable checkpoint, if any was ever cut.
    pub checkpoint: Option<CheckpointImage>,
    /// Commands logged after that checkpoint (or since genesis if none), in
    /// apply order.
    pub suffix: Vec<Command>,
    /// The latest cursor mark after the checkpoint; `ExecutionCursor::Ids`
    /// when no mark was logged.
    pub cursor: ExecutionCursor,
    /// Whether a torn or corrupt tail was truncated away.
    pub truncated: bool,
    /// Valid records scanned across all surviving segments.
    pub records: u64,
}

impl Recovery {
    /// Whether the disk held any state at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.suffix.is_empty()
    }
}

/// A checkpoint as recovered from disk.
#[derive(Debug)]
pub struct CheckpointImage {
    /// Commands applied when the checkpoint was cut.
    pub applied_through: u64,
    /// The serialized `(snapshot, applied AppliedSummary, ordered
    /// AppliedSummary, ExecutionCursor)` payload.
    pub payload: Vec<u8>,
}

struct Segment {
    file: File,
    seq: u64,
    /// Bytes currently durable in the file (magic + flushed records).
    len: u64,
}

/// An open write-ahead log: one directory of numbered segment files.
///
/// ```text
/// <dir>/wal-00000001.seg   (compacted away after the next checkpoint)
/// <dir>/wal-00000002.seg   (starts with the latest checkpoint record)
/// ```
pub struct Wal {
    config: WalConfig,
    current: Segment,
    /// Frames staged since the last [`Wal::commit`]; written in one
    /// `write_all` at the batch boundary (or immediately under
    /// [`FsyncPolicy::PerRecord`]).
    staged: Vec<u8>,
    last_fsync: Instant,
    /// Written-but-not-fsynced bytes exist (page cache ahead of platter).
    dirty: bool,
    stats: WalStats,
}

impl Wal {
    /// Opens (creating if necessary) the log in `config.dir`, scanning
    /// existing segments into a [`Recovery`] and truncating any torn tail.
    pub fn open(config: WalConfig, registry: &Registry) -> io::Result<(Self, Recovery)> {
        fs::create_dir_all(&config.dir)?;
        let stats = WalStats::register(registry);
        let mut segments = list_segments(&config.dir)?;
        let recovery = scan_segments(&config.dir, &mut segments, &stats)?;

        let (seq, path) = match segments.last() {
            Some(&(seq, _)) => (seq, segment_path(&config.dir, seq)),
            None => {
                let path = segment_path(&config.dir, 1);
                init_segment(&path)?;
                sync_dir(&config.dir)?;
                (1, path)
            }
        };
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        let wal = Self {
            config,
            current: Segment { file, seq, len },
            staged: Vec::with_capacity(4096),
            last_fsync: Instant::now(),
            dirty: false,
            stats,
        };
        Ok((wal, recovery))
    }

    /// The directory holding the segment files.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Number of live segment files (for tests and compaction checks).
    pub fn segment_count(&self) -> io::Result<usize> {
        Ok(list_segments(&self.config.dir)?.len())
    }

    /// Stages a decided command; durable per the fsync policy once
    /// [`Wal::commit`] runs at the batch boundary.
    pub fn append_command(&mut self, cmd: &Command) -> io::Result<()> {
        let before = self.staged.len();
        encode_command(&mut self.staged, cmd);
        self.note_append(before)
    }

    /// Stages an execution-cursor mark for the current apply batch.
    pub fn append_cursor(&mut self, cursor: &ExecutionCursor) -> io::Result<()> {
        let before = self.staged.len();
        encode_cursor(&mut self.staged, cursor);
        self.note_append(before)
    }

    fn note_append(&mut self, staged_before: usize) -> io::Result<()> {
        self.stats.appends.inc();
        self.stats.bytes_written.add((self.staged.len() - staged_before) as u64);
        if self.config.fsync == FsyncPolicy::PerRecord {
            self.write_staged()?;
            self.fsync()?;
        }
        Ok(())
    }

    /// Batch boundary: writes staged frames and applies the fsync policy.
    /// Call after an apply batch and *before* flushing its client replies so
    /// acknowledged commands are at least in the page cache.
    pub fn commit(&mut self) -> io::Result<()> {
        self.write_staged()?;
        match self.config.fsync {
            FsyncPolicy::PerRecord => {}
            FsyncPolicy::PerBatch => self.fsync()?,
            FsyncPolicy::Interval(interval) => {
                if self.dirty && self.last_fsync.elapsed() >= interval {
                    self.fsync()?;
                }
            }
        }
        if self.current.len >= self.config.segment_max_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Writes a checkpoint record into a fresh segment, fsyncs it, then
    /// deletes every older segment: the checkpoint fully covers them.
    ///
    /// The ordering is crash-safe — the new segment is durable (file and
    /// directory both synced) before any old segment is unlinked, and a crash
    /// in between merely leaves an extra older segment whose records the next
    /// recovery supersedes when it reaches the checkpoint.
    pub fn append_checkpoint(&mut self, applied_through: u64, payload: &[u8]) -> io::Result<()> {
        self.write_staged()?;
        self.rotate()?;
        let mut frame = Vec::with_capacity(payload.len() + 32);
        encode_checkpoint(&mut frame, applied_through, payload);
        self.current.file.write_all(&frame)?;
        self.current.len += frame.len() as u64;
        self.stats.appends.inc();
        self.stats.checkpoints.inc();
        self.stats.bytes_written.add(frame.len() as u64);
        self.fsync()?;
        self.compact()?;
        Ok(())
    }

    /// Forces everything staged or written onto the platter.
    pub fn sync(&mut self) -> io::Result<()> {
        self.write_staged()?;
        if self.dirty {
            self.fsync()?;
        }
        Ok(())
    }

    fn write_staged(&mut self) -> io::Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        self.current.file.write_all(&self.staged)?;
        self.current.len += self.staged.len() as u64;
        self.staged.clear();
        self.dirty = true;
        Ok(())
    }

    fn fsync(&mut self) -> io::Result<()> {
        let start = Instant::now();
        self.current.file.sync_data()?;
        self.stats.fsyncs.inc();
        self.stats.fsync_us.record(start.elapsed().as_micros() as u64);
        self.last_fsync = Instant::now();
        self.dirty = false;
        Ok(())
    }

    /// Opens the next segment file and makes it current.
    fn rotate(&mut self) -> io::Result<()> {
        if self.dirty {
            self.fsync()?;
        }
        let seq = self.current.seq + 1;
        let path = segment_path(&self.config.dir, seq);
        init_segment(&path)?;
        sync_dir(&self.config.dir)?;
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        self.current = Segment { file, seq, len };
        self.stats.rotations.inc();
        self.last_fsync = Instant::now();
        self.dirty = false;
        Ok(())
    }

    /// Deletes every segment older than the current one.
    fn compact(&mut self) -> io::Result<()> {
        let mut removed = 0u64;
        for (seq, path) in list_segments(&self.config.dir)? {
            if seq < self.current.seq {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.config.dir)?;
            self.stats.compactions.add(removed);
        }
        Ok(())
    }
}

impl Drop for Wal {
    /// Best-effort final flush so a clean shutdown is durable under every
    /// policy.
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

/// Creates a segment file containing only the magic preamble.
fn init_segment(path: &Path) -> io::Result<()> {
    let mut file = OpenOptions::new().create_new(true).write(true).open(path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.sync_data()?;
    Ok(())
}

/// Fsyncs the directory so file creations/deletions survive power loss.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Segment files in `dir`, sorted by sequence number.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((seq, entry.path()));
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Scans `segments` in order into a [`Recovery`], truncating the log at the
/// first torn or corrupt record: the damaged segment is cut back to its last
/// valid byte and every later segment is deleted.
fn scan_segments(
    dir: &Path,
    segments: &mut Vec<(u64, PathBuf)>,
    stats: &WalStats,
) -> io::Result<Recovery> {
    let mut recovery = Recovery {
        checkpoint: None,
        suffix: Vec::new(),
        cursor: ExecutionCursor::Ids,
        truncated: false,
        records: 0,
    };
    let mut cut_from: Option<usize> = None;
    for (index, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            // A segment without a full magic preamble was torn at creation.
            truncate_file(path, 0)?;
            recovery.truncated = true;
            stats.torn_truncations.inc();
            cut_from = Some(index);
            break;
        }
        let mut offset = SEGMENT_MAGIC.len();
        loop {
            if offset == bytes.len() {
                break;
            }
            match decode_record(&bytes[offset..]) {
                DecodeOutcome::Record(record, consumed) => {
                    offset += consumed;
                    recovery.records += 1;
                    match record {
                        WalRecord::Command(cmd) => recovery.suffix.push(cmd),
                        WalRecord::Cursor(cursor) => recovery.cursor = cursor,
                        WalRecord::Checkpoint { applied_through, payload } => {
                            recovery.checkpoint =
                                Some(CheckpointImage { applied_through, payload });
                            recovery.suffix.clear();
                            recovery.cursor = ExecutionCursor::Ids;
                        }
                    }
                }
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt => {
                    truncate_file(path, offset as u64)?;
                    recovery.truncated = true;
                    stats.torn_truncations.inc();
                    cut_from = Some(index);
                    break;
                }
            }
        }
        if cut_from.is_some() {
            break;
        }
    }
    // Everything after the damaged record — including whole later segments —
    // is discarded: recovery stops at the last contiguous valid record.
    if let Some(index) = cut_from {
        for (_, path) in segments.drain(index + 1..) {
            fs::remove_file(path)?;
        }
        sync_dir(dir)?;
    }
    stats.replayed.add(recovery.suffix.len() as u64);
    Ok(recovery)
}

fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len.max(SEGMENT_MAGIC.len() as u64).min(file.metadata()?.len()))?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;
    use consensus_types::{CommandId, NodeId};

    fn cmd(seq: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), seq % 16, seq * 10)
    }

    fn open(dir: &Path) -> (Wal, Recovery) {
        let registry = Registry::new();
        Wal::open(WalConfig::new(dir.to_path_buf()), &registry).expect("open wal")
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let tmp = TempDir::new("wal-empty").unwrap();
        let (_wal, recovery) = open(tmp.path());
        assert!(recovery.is_empty());
        assert!(!recovery.truncated);
    }

    #[test]
    fn commands_and_cursor_round_trip_across_reopen() {
        let tmp = TempDir::new("wal-roundtrip").unwrap();
        {
            let (mut wal, _) = open(tmp.path());
            for seq in 0..10 {
                wal.append_command(&cmd(seq)).unwrap();
            }
            wal.append_cursor(&ExecutionCursor::Log {
                next_execute: 11,
                next_free: 12,
                backlog: Vec::new(),
            })
            .unwrap();
            wal.commit().unwrap();
        }
        let (_wal, recovery) = open(tmp.path());
        assert_eq!(recovery.suffix.len(), 10);
        assert_eq!(recovery.suffix[3], cmd(3));
        assert!(matches!(recovery.cursor, ExecutionCursor::Log { next_execute: 11, .. }));
        assert!(!recovery.truncated);
    }

    #[test]
    fn checkpoint_resets_suffix_and_compacts() {
        let tmp = TempDir::new("wal-checkpoint").unwrap();
        {
            let (mut wal, _) = open(tmp.path());
            for seq in 0..5 {
                wal.append_command(&cmd(seq)).unwrap();
            }
            wal.commit().unwrap();
            wal.append_checkpoint(5, b"snapshot-triple").unwrap();
            assert_eq!(wal.segment_count().unwrap(), 1, "compaction removed the old segment");
            wal.append_command(&cmd(5)).unwrap();
            wal.commit().unwrap();
        }
        let (_wal, recovery) = open(tmp.path());
        let image = recovery.checkpoint.expect("checkpoint recovered");
        assert_eq!(image.applied_through, 5);
        assert_eq!(image.payload, b"snapshot-triple");
        assert_eq!(recovery.suffix, vec![cmd(5)]);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_reusable() {
        let tmp = TempDir::new("wal-torn").unwrap();
        {
            let (mut wal, _) = open(tmp.path());
            for seq in 0..8 {
                wal.append_command(&cmd(seq)).unwrap();
            }
            wal.commit().unwrap();
        }
        // Tear the final record: chop the last 3 bytes of the segment.
        let segment = segment_path(tmp.path(), 1);
        let len = fs::metadata(&segment).unwrap().len();
        OpenOptions::new().write(true).open(&segment).unwrap().set_len(len - 3).unwrap();

        let registry = Registry::new();
        let (mut wal, recovery) =
            Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry).unwrap();
        assert!(recovery.truncated);
        assert_eq!(recovery.suffix.len(), 7, "torn final record dropped");
        assert_eq!(registry.snapshot().counter("wal.torn_truncations"), 1);

        // The log keeps working past the truncation point.
        wal.append_command(&cmd(100)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_wal, recovery) = open(tmp.path());
        assert_eq!(recovery.suffix.len(), 8);
        assert_eq!(recovery.suffix.last(), Some(&cmd(100)));
        assert!(!recovery.truncated);
    }

    #[test]
    fn size_rotation_spans_segments() {
        let tmp = TempDir::new("wal-rotate").unwrap();
        let registry = Registry::new();
        let config = WalConfig::new(tmp.path().to_path_buf()).with_segment_max_bytes(256);
        {
            let (mut wal, _) = Wal::open(config.clone(), &registry).unwrap();
            for seq in 0..50 {
                wal.append_command(&cmd(seq)).unwrap();
                wal.commit().unwrap();
            }
            assert!(wal.segment_count().unwrap() > 1, "size bound forced rotation");
        }
        let (_wal, recovery) = Wal::open(config, &registry).unwrap();
        assert_eq!(recovery.suffix.len(), 50, "recovery stitches segments together");
    }

    #[test]
    fn per_record_policy_fsyncs_each_append() {
        let tmp = TempDir::new("wal-fsync").unwrap();
        let registry = Registry::new();
        let config = WalConfig::new(tmp.path().to_path_buf()).with_fsync(FsyncPolicy::PerRecord);
        let (mut wal, _) = Wal::open(config, &registry).unwrap();
        for seq in 0..4 {
            wal.append_command(&cmd(seq)).unwrap();
        }
        assert!(registry.snapshot().counter("wal.fsyncs") >= 4);
    }
}
