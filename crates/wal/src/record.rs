//! On-disk record framing for the write-ahead log.
//!
//! Every record in a segment file is framed exactly like a wire frame in
//! `net::wire`: a little-endian `u32` payload length, a little-endian `u32`
//! CRC-32 of the payload (the same IEEE 802.3 checksum the transport uses,
//! shared via [`consensus_types::crc32`]), then the payload. The payload is a
//! one-byte record tag followed by the tag-specific body:
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | `0` | [`WalRecord::Command`] | bincode [`Command`] |
//! | `1` | [`WalRecord::Cursor`] | bincode [`ExecutionCursor`] |
//! | `2` | [`WalRecord::Checkpoint`] | varint `applied_through`, varint byte length, raw checkpoint payload |
//!
//! The checkpoint body carries its payload as raw bytes (not a serde
//! `Vec<u8>`, which would varint-expand every byte ≥ 128) so the serialized
//! `(snapshot, applied AppliedSummary, ordered AppliedSummary,
//! ExecutionCursor)` payload the replica already builds for snapshot
//! donations is written to disk verbatim.
//!
//! Decoding distinguishes a record that is *incomplete* (the file ends before
//! the frame does — a torn tail from a crash mid-write) from one that is
//! *corrupt* (implausible length, CRC mismatch, or an undecodable body — a
//! torn or bit-rotted record). Recovery treats both the same way: the log is
//! truncated at the start of the bad record and everything before it stands.

use consensus_types::{crc32, Command, ExecutionCursor};
use serde::{read_varint, write_varint, Deserialize, Serialize};

/// Bytes of record header preceding the payload: `u32` length + `u32` CRC-32.
pub const RECORD_HEADER_LEN: usize = 8;

/// Upper bound on a record payload, guarding against corrupt length prefixes.
/// Checkpoint records embed a full state-machine snapshot, so the cap is much
/// larger than the wire's per-frame limit (snapshots cross the wire chunked;
/// on disk they are one record).
pub const MAX_RECORD_LEN: u32 = 1024 * 1024 * 1024;

const TAG_COMMAND: u8 = 0;
const TAG_CURSOR: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;

/// One decoded write-ahead-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A decided command, appended immediately before it is applied to the
    /// state machine.
    Command(Command),
    /// The protocol's execution cursor after an apply batch. Replaying the
    /// latest mark lets a slot-based protocol resume exactly where it left
    /// off instead of at the (stale) cursor embedded in the last checkpoint.
    Cursor(ExecutionCursor),
    /// A durable checkpoint: the serialized `(snapshot, applied
    /// AppliedSummary, ordered AppliedSummary, ExecutionCursor)` payload the
    /// replica also donates over the wire, opaque to the log itself. Everything logged before a checkpoint is
    /// covered by it and eligible for compaction.
    Checkpoint {
        /// Commands applied when the checkpoint was cut (the watermark).
        applied_through: u64,
        /// The serialized state payload, restored via the same path as a
        /// snapshot received from a donor.
        payload: Vec<u8>,
    },
}

/// Appends a framed record (`len | crc | payload`) to `buf`.
fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_RECORD_LEN as usize);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encodes a [`WalRecord::Command`] frame into `buf` without cloning `cmd`.
pub fn encode_command(buf: &mut Vec<u8>, cmd: &Command) {
    let mut payload = Vec::with_capacity(32);
    payload.push(TAG_COMMAND);
    cmd.serialize(&mut payload);
    frame_into(buf, &payload);
}

/// Encodes a [`WalRecord::Cursor`] frame into `buf`.
pub fn encode_cursor(buf: &mut Vec<u8>, cursor: &ExecutionCursor) {
    let mut payload = Vec::with_capacity(32);
    payload.push(TAG_CURSOR);
    cursor.serialize(&mut payload);
    frame_into(buf, &payload);
}

/// Encodes a [`WalRecord::Checkpoint`] frame into `buf`; `payload` is the
/// already-serialized state payload and is written verbatim.
pub fn encode_checkpoint(buf: &mut Vec<u8>, applied_through: u64, payload: &[u8]) {
    let mut body = Vec::with_capacity(payload.len() + 16);
    body.push(TAG_CHECKPOINT);
    write_varint(&mut body, applied_through);
    write_varint(&mut body, payload.len() as u64);
    body.extend_from_slice(payload);
    frame_into(buf, &body);
}

/// Result of attempting to decode the record at the head of `input`.
#[derive(Debug)]
pub enum DecodeOutcome {
    /// A valid record followed by the total bytes it consumed (header +
    /// payload).
    Record(WalRecord, usize),
    /// The buffer ends before the frame does — a torn tail.
    Incomplete,
    /// The frame is damaged: implausible length, CRC mismatch, or an
    /// undecodable body.
    Corrupt,
}

/// Decodes the record starting at `input[0]`.
pub fn decode_record(input: &[u8]) -> DecodeOutcome {
    if input.len() < RECORD_HEADER_LEN {
        return DecodeOutcome::Incomplete;
    }
    let len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    if len == 0 || len > MAX_RECORD_LEN {
        return DecodeOutcome::Corrupt;
    }
    let expected_crc = u32::from_le_bytes([input[4], input[5], input[6], input[7]]);
    let total = RECORD_HEADER_LEN + len as usize;
    if input.len() < total {
        return DecodeOutcome::Incomplete;
    }
    let payload = &input[RECORD_HEADER_LEN..total];
    if crc32(payload) != expected_crc {
        return DecodeOutcome::Corrupt;
    }
    match decode_payload(payload) {
        Some(record) => DecodeOutcome::Record(record, total),
        None => DecodeOutcome::Corrupt,
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let (&tag, mut body) = payload.split_first()?;
    match tag {
        TAG_COMMAND => {
            let cmd = Command::deserialize(&mut body).ok()?;
            body.is_empty().then_some(WalRecord::Command(cmd))
        }
        TAG_CURSOR => {
            let cursor = ExecutionCursor::deserialize(&mut body).ok()?;
            body.is_empty().then_some(WalRecord::Cursor(cursor))
        }
        TAG_CHECKPOINT => {
            let applied_through = read_varint(&mut body).ok()?;
            let len = read_varint(&mut body).ok()?;
            if body.len() as u64 != len {
                return None;
            }
            Some(WalRecord::Checkpoint { applied_through, payload: body.to_vec() })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::{CommandId, NodeId};

    fn cmd(seq: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), seq, seq * 10)
    }

    #[test]
    fn command_round_trip() {
        let mut buf = Vec::new();
        encode_command(&mut buf, &cmd(7));
        match decode_record(&buf) {
            DecodeOutcome::Record(WalRecord::Command(decoded), consumed) => {
                assert_eq!(decoded, cmd(7));
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn checkpoint_payload_written_verbatim() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut buf = Vec::new();
        encode_checkpoint(&mut buf, 42, &payload);
        // Raw-byte body: the 256-byte payload must appear unexpanded.
        assert!(buf.windows(payload.len()).any(|w| w == &payload[..]));
        match decode_record(&buf) {
            DecodeOutcome::Record(WalRecord::Checkpoint { applied_through, payload: p }, _) => {
                assert_eq!(applied_through, 42);
                assert_eq!(p, payload);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_incomplete() {
        let mut buf = Vec::new();
        encode_cursor(&mut buf, &ExecutionCursor::Ids);
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_record(&buf[..cut]), DecodeOutcome::Incomplete),
                "cut at {cut} should be incomplete"
            );
        }
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let mut buf = Vec::new();
        encode_command(&mut buf, &cmd(3));
        for bit_at in RECORD_HEADER_LEN..buf.len() {
            let mut torn = buf.clone();
            torn[bit_at] ^= 0x40;
            assert!(
                matches!(decode_record(&torn), DecodeOutcome::Corrupt),
                "payload flip at {bit_at} should be corrupt"
            );
        }
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut buf = (MAX_RECORD_LEN + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        assert!(matches!(decode_record(&buf), DecodeOutcome::Corrupt));
    }
}
