//! Raw `extern "C"` bindings to the handful of Linux syscalls the reactor
//! needs: epoll, eventfd, and the socket calls `std::net` does not expose
//! (nonblocking `connect`, `SO_REUSEADDR` binds, `SO_ERROR`, rlimits).
//!
//! The build environment has no route to crates.io, so there is no `libc`
//! crate to lean on; these declarations link against the C library that is
//! already part of every Linux Rust binary. Everything here is `pub(crate)`
//! — the safe [`crate::Poller`]/[`crate::Waker`] API is the only public
//! surface.

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_uint, c_void};

/// One epoll readiness record. On x86-64 the kernel ABI packs this struct
/// (no padding between `events` and `data`); other architectures use natural
/// alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub(crate) struct epoll_event {
    pub events: u32,
    pub data: u64,
}

pub(crate) const EPOLL_CLOEXEC: c_int = 0x80000;
pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EFD_CLOEXEC: c_int = 0x80000;
pub(crate) const EFD_NONBLOCK: c_int = 0x800;

pub(crate) const AF_INET: c_int = 2;
pub(crate) const AF_INET6: c_int = 10;
pub(crate) const SOCK_STREAM: c_int = 1;
pub(crate) const SOCK_NONBLOCK: c_int = 0x800;
pub(crate) const SOCK_CLOEXEC: c_int = 0x80000;

pub(crate) const SOL_SOCKET: c_int = 1;
pub(crate) const SO_REUSEADDR: c_int = 2;
pub(crate) const SO_ERROR: c_int = 4;

pub(crate) const EINTR: c_int = 4;
pub(crate) const EINPROGRESS: c_int = 115;

pub(crate) const RLIMIT_NOFILE: c_int = 7;

/// IPv4 socket address, network byte order where the kernel expects it.
#[repr(C)]
pub(crate) struct sockaddr_in {
    pub sin_family: u16,
    pub sin_port: u16,
    pub sin_addr: u32,
    pub sin_zero: [u8; 8],
}

/// IPv6 socket address, network byte order where the kernel expects it.
#[repr(C)]
pub(crate) struct sockaddr_in6 {
    pub sin6_family: u16,
    pub sin6_port: u16,
    pub sin6_flowinfo: u32,
    pub sin6_addr: [u8; 16],
    pub sin6_scope_id: u32,
}

#[repr(C)]
pub(crate) struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub(crate) fn epoll_create1(flags: c_int) -> c_int;
    pub(crate) fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub(crate) fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub(crate) fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub(crate) fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub(crate) fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    pub(crate) fn close(fd: c_int) -> c_int;
    pub(crate) fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub(crate) fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    pub(crate) fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    pub(crate) fn listen(fd: c_int, backlog: c_int) -> c_int;
    pub(crate) fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut u32,
    ) -> c_int;
    pub(crate) fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    pub(crate) fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub(crate) fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

/// The calling thread's last OS error as an [`std::io::Error`].
pub(crate) fn last_error() -> std::io::Error {
    std::io::Error::last_os_error()
}

/// Converts a raw return value into a result, mapping `-1` to the current OS
/// error.
pub(crate) fn cvt(ret: c_int) -> std::io::Result<c_int> {
    if ret == -1 {
        Err(last_error())
    } else {
        Ok(ret)
    }
}
