//! Minimal epoll readiness-polling layer for the socket runtime.
//!
//! The `net` crate's event loop needs exactly four things from the OS: a
//! readiness multiplexer ([`Poller`], wrapping `epoll`), a cross-thread
//! wakeup ([`Waker`], wrapping `eventfd`), nonblocking connection
//! establishment ([`connect_stream`] + [`take_socket_error`]), and a
//! rebindable listener ([`bind_reusable`]). This crate provides them over
//! raw `extern "C"` bindings (see [`sys`](self)) — no registry dependencies,
//! matching the offline build environment.
//!
//! The API follows the shape popularized by `mio`: sockets are registered
//! with a caller-chosen [`Token`] and an [`Interest`] set, and
//! [`Poller::wait`] fills an [`Events`] buffer with `(token, readiness)`
//! records. Registration is level-triggered, so a socket that still has
//! buffered bytes (or writable space) keeps reporting ready — the event loop
//! never needs to drain within one wakeup.
//!
//! ```
//! use reactor::{Events, Interest, Poller, Token, Waker};
//!
//! let poller = Poller::new().unwrap();
//! let waker = Waker::new().unwrap();
//! poller.register(waker.fd(), Token(0), Interest::READABLE).unwrap();
//! waker.wake().unwrap();
//! let mut events = Events::with_capacity(8);
//! poller.wait(&mut events, Some(std::time::Duration::from_secs(1))).unwrap();
//! assert!(events.iter().any(|e| e.token == Token(0) && e.readable));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod net;
mod sys;

pub use net::{bind_reusable, connect_stream, raise_nofile_limit, take_socket_error};

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered file descriptor; every
/// readiness record carries the token of the socket it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// The readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Wake when the descriptor has bytes to read (or a peer hangup).
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Wake when the descriptor can accept writes.
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);
    /// Both readable and writable.
    pub const BOTH: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT);

    /// Combines two interest sets.
    #[must_use]
    pub const fn and(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this set includes write readiness.
    #[must_use]
    pub const fn is_writable(self) -> bool {
        self.0 & sys::EPOLLOUT != 0
    }
}

/// One readiness record produced by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// The descriptor has bytes to read (or the peer closed its write half).
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// The descriptor is in an error or hangup state; the owner should check
    /// [`take_socket_error`] or treat the connection as dead.
    pub error: bool,
}

/// Reusable buffer of readiness records filled by [`Poller::wait`].
pub struct Events {
    raw: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    /// A buffer able to report up to `capacity` descriptors per wait.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { raw: vec![sys::epoll_event { events: 0, data: 0 }; capacity], len: 0 }
    }

    /// Number of records the last wait produced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait produced no records (timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the records of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = PollEvent> + '_ {
        self.raw[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) kernel struct by value.
            let bits = { raw.events };
            let data = { raw.data };
            PollEvent {
                token: Token(data),
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }
}

/// A level-triggered `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: c_int,
}

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Self { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut event = sys::epoll_event { events: interest.0, data: token.0 };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Starts watching `fd` with the given token and interest.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the token or interest of an already-registered descriptor.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`. Safe to call on descriptors that were never
    /// registered (the `ENOENT` is swallowed) so teardown paths can be
    /// unconditional.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut event = sys::epoll_event { events: 0, data: 0 };
        match sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) }) {
            Ok(_) => Ok(()),
            Err(err) if err.raw_os_error() == Some(2) => Ok(()), // ENOENT
            Err(err) => Err(err),
        }
    }

    /// Blocks until at least one registered descriptor is ready or `timeout`
    /// elapses (`None` blocks indefinitely); fills `events` and returns the
    /// record count. A spurious `EINTR` retries with the same timeout.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // Round sub-millisecond timeouts *up* so a 100 µs deadline does not
        // busy-spin as a zero-timeout poll.
        let millis: c_int = match timeout {
            None => -1,
            Some(d) => d.as_micros().div_ceil(1_000).min(c_int::MAX as u128) as c_int,
        };
        events.len = 0;
        loop {
            let got = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as c_int,
                    millis,
                )
            };
            if got >= 0 {
                events.len = got as usize;
                return Ok(events.len);
            }
            let err = sys::last_error();
            if err.raw_os_error() != Some(sys::EINTR) {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poller`], backed by an `eventfd`.
///
/// Register [`Waker::fd`] with a reserved token; any thread may then call
/// [`Waker::wake`] to make the poller's wait return, and the event-loop
/// thread calls [`Waker::drain`] when it sees that token readable.
#[derive(Debug)]
pub struct Waker {
    fd: c_int,
}

impl Waker {
    /// Creates a nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Self { fd })
    }

    /// The descriptor to register with the poller (readable interest).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the poller wake up. Cheap and safe from any thread; multiple
    /// wakes before a drain coalesce into one readiness event.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret =
            unsafe { sys::write(self.fd, (&raw const one).cast::<c_void>(), size_of::<u64>()) };
        if ret == -1 {
            let err = sys::last_error();
            // A full counter still leaves the fd readable — the wake is
            // already pending, which is all the caller wants.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Clears pending wakeups so the next [`Poller::wait`] can block again.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        unsafe { sys::read(self.fd, (&raw mut counter).cast::<c_void>(), size_of::<u64>()) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

// Waker is just an fd; writes to an eventfd are atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    const LISTENER: Token = Token(1);
    const CLIENT: Token = Token(2);

    fn wait_for(
        poller: &Poller,
        events: &mut Events,
        pred: impl Fn(&PollEvent) -> bool,
    ) -> PollEvent {
        for _ in 0..100 {
            poller.wait(events, Some(Duration::from_millis(100))).unwrap();
            if let Some(event) = events.iter().find(&pred) {
                return event;
            }
        }
        panic!("expected readiness event never arrived");
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "nothing connected yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let event = wait_for(&poller, &mut events, |e| e.token == LISTENER);
        assert!(event.readable);
    }

    #[test]
    fn nonblocking_connect_completes_and_reports_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let stream = connect_stream(addr).unwrap();
        poller.register(stream.as_raw_fd(), CLIENT, Interest::WRITABLE).unwrap();

        let mut events = Events::with_capacity(8);
        let event = wait_for(&poller, &mut events, |e| e.token == CLIENT);
        assert!(event.writable);
        take_socket_error(stream.as_raw_fd()).expect("loopback connect succeeds");

        // The connection is real: bytes flow.
        let (mut accepted, _) = listener.accept().unwrap();
        let mut stream = stream;
        stream.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_the_error() {
        // Reserve a port and close it so nothing is listening there.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let poller = Poller::new().unwrap();
        let stream = connect_stream(addr).unwrap();
        poller.register(stream.as_raw_fd(), CLIENT, Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        let event = wait_for(&poller, &mut events, |e| e.token == CLIENT);
        assert!(event.error || event.writable);
        assert!(take_socket_error(stream.as_raw_fd()).is_err(), "refused connect must surface");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), Token(0), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(4);

        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces
        poller.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();

        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "drained waker must not stay readable");
    }

    #[test]
    fn reregister_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        stream.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // A fresh connection with an empty send buffer is writable, not
        // readable.
        poller.register(stream.as_raw_fd(), CLIENT, Interest::BOTH).unwrap();
        let mut events = Events::with_capacity(4);
        let event = wait_for(&poller, &mut events, |e| e.token == CLIENT);
        assert!(event.writable && !event.readable);
        // Dropping write interest silences it entirely.
        poller.reregister(stream.as_raw_fd(), CLIENT, Interest::READABLE).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        poller.deregister(stream.as_raw_fd()).unwrap();
    }

    #[test]
    fn reusable_bind_rebinds_a_just_closed_address() {
        let first = bind_reusable("127.0.0.1:0".parse().unwrap(), 8).unwrap();
        let addr = first.local_addr().unwrap();
        // Leave a connection in TIME_WAIT on that port.
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = first.accept().unwrap();
        drop(accepted);
        drop(client);
        drop(first);
        let again = bind_reusable(addr, 8).expect("SO_REUSEADDR rebind");
        assert_eq!(again.local_addr().unwrap(), addr);
    }
}
