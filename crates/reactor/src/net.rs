//! Socket plumbing `std::net` does not expose: nonblocking `connect`,
//! `SO_REUSEADDR` listeners, `SO_ERROR` retrieval, and file-descriptor
//! rlimits (a replica holding thousands of client connections outgrows the
//! default soft limit).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{FromRawFd, RawFd};

use crate::sys;

/// An open socket fd that closes itself unless explicitly released, so the
/// error paths below never leak descriptors.
struct Socket(c_int);

impl Socket {
    fn new(family: c_int) -> io::Result<Self> {
        let fd = sys::cvt(unsafe {
            sys::socket(family, sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC, 0)
        })?;
        Ok(Self(fd))
    }

    fn into_raw(self) -> c_int {
        let fd = self.0;
        std::mem::forget(self);
        fd
    }
}

impl Drop for Socket {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// Calls `f` with the kernel representation of `addr`.
fn with_sockaddr<T>(addr: SocketAddr, f: impl FnOnce(*const c_void, u32) -> T) -> T {
    match addr {
        SocketAddr::V4(v4) => {
            let raw = sys::sockaddr_in {
                sin_family: sys::AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            f((&raw const raw).cast(), size_of::<sys::sockaddr_in>() as u32)
        }
        SocketAddr::V6(v6) => {
            let raw = sys::sockaddr_in6 {
                sin6_family: sys::AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            f((&raw const raw).cast(), size_of::<sys::sockaddr_in6>() as u32)
        }
    }
}

fn family(addr: &SocketAddr) -> c_int {
    match addr {
        SocketAddr::V4(_) => sys::AF_INET,
        SocketAddr::V6(_) => sys::AF_INET6,
    }
}

/// Starts a **nonblocking** TCP connect to `addr` and returns the stream
/// immediately — usually before the handshake finishes.
///
/// Register the stream for write interest; when it reports writable (or an
/// error), call [`take_socket_error`] to learn whether the connect
/// succeeded. This is the reactor-friendly replacement for
/// `TcpStream::connect`, which blocks the calling thread for up to a full
/// connect timeout.
pub fn connect_stream(addr: SocketAddr) -> io::Result<TcpStream> {
    let socket = Socket::new(family(&addr))?;
    let ret = with_sockaddr(addr, |raw, len| unsafe { sys::connect(socket.0, raw, len) });
    if ret == -1 {
        let err = sys::last_error();
        match err.raw_os_error() {
            // In progress: completion is reported through write readiness.
            Some(sys::EINPROGRESS) | Some(sys::EINTR) => {}
            _ => return Err(err),
        }
    }
    Ok(unsafe { TcpStream::from_raw_fd(socket.into_raw()) })
}

/// Consumes and returns the pending socket error (`SO_ERROR`), the
/// completion status of a nonblocking connect: `Ok(())` means the handshake
/// succeeded, `Err` carries the refusal/timeout.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = size_of::<c_int>() as u32;
    sys::cvt(unsafe {
        sys::getsockopt(
            fd,
            sys::SOL_SOCKET,
            sys::SO_ERROR,
            (&raw mut err).cast::<c_void>(),
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

/// Binds a TCP listener with `SO_REUSEADDR`, so a restarted replica can
/// reclaim its old address even while connections from its previous life
/// linger in `TIME_WAIT`. The listener comes back nonblocking.
pub fn bind_reusable(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
    let socket = Socket::new(family(&addr))?;
    let reuse: c_int = 1;
    sys::cvt(unsafe {
        sys::setsockopt(
            socket.0,
            sys::SOL_SOCKET,
            sys::SO_REUSEADDR,
            (&raw const reuse).cast::<c_void>(),
            size_of::<c_int>() as u32,
        )
    })?;
    sys::cvt(with_sockaddr(addr, |raw, len| unsafe { sys::bind(socket.0, raw, len) }))?;
    sys::cvt(unsafe { sys::listen(socket.0, backlog) })?;
    Ok(unsafe { TcpListener::from_raw_fd(socket.into_raw()) })
}

/// Raises the soft open-file limit toward `want` (capped by the hard limit)
/// and returns the resulting soft limit. A no-op when the limit is already
/// high enough.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = sys::rlimit { rlim_cur: 0, rlim_max: 0 };
    sys::cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    sys::cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}
