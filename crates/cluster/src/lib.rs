//! A real-time, multi-threaded in-process cluster.
//!
//! The discrete-event simulator (`simnet`) measures protocol behaviour in
//! *simulated* time. This crate complements it with a wall-clock runtime: one
//! OS thread per replica, crossbeam channels as links, and per-message delays
//! that inject the configured WAN latency. It exercises the exact same
//! [`simnet::Process`] implementations (CAESAR, EPaxos, …) without any code
//! change, applies every execution to a per-replica key-value store, and
//! serves clients through the runtime-agnostic
//! [`consensus_core::session::ClusterHandle`] API.
//!
//! Latencies are scaled down by a configurable factor so a five-site WAN
//! round trip does not make tests take minutes of wall-clock time.
//!
//! # Example
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use cluster::{Cluster, ClusterConfig};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use simnet::LatencyMatrix;
//!
//! let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.01);
//! let caesar = CaesarConfig::new(5);
//! let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
//! let client = cluster.client(NodeId(0));
//! let reply = client.submit(Op::put(7, 1)).unwrap().wait().unwrap();
//! assert_eq!(reply.node, NodeId(0));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_core::batch::{BatchConfig, Batcher};
use consensus_core::exec::Executor;
use consensus_core::session::{
    ClientHandle, ClusterHandle, ParkDrive, Reply, SessionCore, SessionError, SubmitTransport,
    DEFAULT_IN_FLIGHT,
};
use consensus_core::state_machine::StateMachineFactory;
use consensus_types::{Command, Decision, Execution, NodeId, SimTime};
use crossbeam_channel::{unbounded, Receiver, Sender};
use kvstore::KvStore;
use parking_lot::Mutex;
use simnet::{Context, LatencyMatrix, Process};
use telemetry::{Registry, SpanEvent, TracePhase};

/// Configuration of a real-time cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// WAN latency matrix (same format as the simulator's).
    pub latency: LatencyMatrix,
    /// Multiplier applied to every latency before sleeping (e.g. `0.01` turns
    /// a 93 ms one-way delay into 0.93 ms so tests stay fast).
    pub latency_scale: f64,
    /// Bound on client-session commands in flight before `submit` pushes
    /// back.
    pub max_in_flight: usize,
    /// Builds each replica's state machine (the `kvstore` reference
    /// implementation by default).
    pub state_machine: StateMachineFactory,
    /// Proposer batching: client commands queued at the same replica
    /// coalesce into one consensus unit. Disabled by default so existing
    /// tests observe one instance per command.
    pub batch: BatchConfig,
    /// Execution workers per replica. `1` (the default) applies commands
    /// serially on the replica thread; `>= 2` shards partitionable state
    /// machines so non-conflicting commands apply in parallel.
    pub exec_workers: usize,
    /// Per-node override of [`ClusterConfig::exec_workers`], for clusters
    /// that mix serial and sharded replicas (parity tests rely on this).
    pub exec_workers_per_node: Option<Vec<usize>>,
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("latency", &self.latency)
            .field("latency_scale", &self.latency_scale)
            .field("max_in_flight", &self.max_in_flight)
            .field("batch", &self.batch)
            .field("exec_workers", &self.exec_workers)
            .finish_non_exhaustive()
    }
}

impl ClusterConfig {
    /// Creates a configuration with real (unscaled) latencies.
    #[must_use]
    pub fn new(latency: LatencyMatrix) -> Self {
        Self {
            latency,
            latency_scale: 1.0,
            max_in_flight: DEFAULT_IN_FLIGHT,
            state_machine: KvStore::factory(),
            batch: BatchConfig::disabled(),
            exec_workers: 1,
            exec_workers_per_node: None,
        }
    }

    /// Enables proposer batching with the given maximum batch size.
    #[must_use]
    pub fn with_batch(mut self, max_batch: usize) -> Self {
        self.batch = BatchConfig { max_batch: max_batch.max(1), ..BatchConfig::default() };
        self
    }

    /// Sets the number of execution workers per replica.
    #[must_use]
    pub fn with_exec_workers(mut self, workers: usize) -> Self {
        self.exec_workers = workers.max(1);
        self
    }

    /// Overrides the worker count per node (missing entries fall back to
    /// [`ClusterConfig::exec_workers`]).
    #[must_use]
    pub fn with_exec_workers_per_node(mut self, workers: Vec<usize>) -> Self {
        self.exec_workers_per_node = Some(workers);
        self
    }

    fn exec_workers_for(&self, index: usize) -> usize {
        self.exec_workers_per_node
            .as_ref()
            .and_then(|w| w.get(index).copied())
            .unwrap_or(self.exec_workers)
            .max(1)
    }

    /// Sets the latency scale factor.
    #[must_use]
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale;
        self
    }

    /// Sets the client-session in-flight bound.
    #[must_use]
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max;
        self
    }

    /// Replaces the per-replica state-machine factory (defaults to the
    /// `kvstore` reference implementation).
    #[must_use]
    pub fn with_state_machine(mut self, factory: StateMachineFactory) -> Self {
        self.state_machine = factory;
        self
    }
}

enum Envelope<M> {
    Message { from: NodeId, msg: M, deliver_at: Instant },
    Client { cmd: Command },
    Shutdown,
}

/// A running cluster of replica threads.
pub struct Cluster<P: Process> {
    senders: Arc<Vec<Sender<Envelope<P::Message>>>>,
    handles: Vec<JoinHandle<()>>,
    decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    /// One executor per replica (serial or sharded over the replica's state
    /// machine), shared with its replica thread so callers can inspect
    /// fingerprints/watermarks.
    executors: Arc<Vec<Executor>>,
    /// Each replica's telemetry registry (`None` for processes that do not
    /// expose one), captured before the process moved into its thread.
    registries: Vec<Option<Arc<Registry>>>,
    session: Arc<SessionCore>,
    started_at: Instant,
}

impl<P> Cluster<P>
where
    P: Process + Send + 'static,
    P::Message: Send + 'static,
{
    /// Spawns one replica thread per node in the latency matrix.
    #[must_use]
    pub fn start(config: ClusterConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        let nodes = config.latency.nodes();
        let started_at = Instant::now();
        let decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let session = SessionCore::new(config.max_in_flight);
        // Build the processes first so each replica's executor can register
        // its `exec.*` metrics in that replica's own telemetry registry.
        let mut processes = Vec::with_capacity(nodes);
        let mut registries = Vec::with_capacity(nodes);
        for index in 0..nodes {
            let process = make(NodeId::from_index(index));
            registries.push(process.telemetry());
            processes.push(process);
        }
        let executors: Arc<Vec<Executor>> = Arc::new(
            (0..nodes)
                .map(|i| {
                    let registry =
                        registries[i].clone().unwrap_or_else(|| Arc::new(Registry::new()));
                    Executor::new(
                        config.state_machine.clone(),
                        NodeId::from_index(i),
                        config.exec_workers_for(i),
                        &registry,
                    )
                })
                .collect(),
        );
        let mut senders = Vec::with_capacity(nodes);
        let mut receivers: Vec<Receiver<Envelope<P::Message>>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let mut handles = Vec::with_capacity(nodes);
        // Span timestamps are recorded against `started_at`; this offset
        // rebases them onto the wall clock when they are drained.
        let wall0 =
            telemetry::wall_clock_us().saturating_sub(started_at.elapsed().as_micros() as u64);
        for (index, (rx, mut process)) in receivers.into_iter().zip(processes).enumerate() {
            let id = NodeId::from_index(index);
            let registry = registries[index].clone();
            let peers = Arc::clone(&senders);
            let latency = config.latency.clone();
            let scale = config.latency_scale;
            let decisions = Arc::clone(&decisions);
            let session = Arc::clone(&session);
            let executors = Arc::clone(&executors);
            let batch = config.batch;
            let started = started_at;
            handles.push(std::thread::spawn(move || {
                let mut replica = ReplicaLoop {
                    id,
                    nodes,
                    rx,
                    peers,
                    latency,
                    scale,
                    decisions,
                    session,
                    started,
                    executors,
                    batch,
                    batcher: Batcher::new(id),
                    stash: VecDeque::new(),
                    timers: Vec::new(),
                    registry,
                    wall0,
                };
                replica.run(&mut process);
            }));
        }
        Self { senders, handles, decisions, executors, registries, session, started_at }
    }

    /// Submits a client command to `node` without waiting for a reply.
    /// Session clients obtained through [`ClusterHandle::client`] additionally
    /// route the reply back when the command executes at `node`.
    pub fn submit(&self, node: NodeId, cmd: Command) {
        let _ = self.senders[node.index()].send(Envelope::Client { cmd });
    }

    /// Decisions executed so far at `node`.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> Vec<Decision> {
        self.decisions.lock().get(&node).cloned().unwrap_or_default()
    }

    /// Blocks until `node` has executed at least `count` commands or the
    /// timeout elapses; returns whatever has been executed by then.
    #[must_use]
    pub fn wait_for_decisions(
        &self,
        node: NodeId,
        count: usize,
        timeout: Duration,
    ) -> Vec<Decision> {
        let deadline = Instant::now() + timeout;
        loop {
            let current = self.decisions(node);
            if current.len() >= count || Instant::now() >= deadline {
                return current;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The state-machine digest of `node` (see
    /// [`consensus_core::StateMachine::fingerprint`]).
    #[must_use]
    pub fn state_fingerprint(&self, node: NodeId) -> u64 {
        self.executors[node.index()].fingerprint()
    }

    /// Number of commands `node`'s state machine has applied so far.
    #[must_use]
    pub fn applied_through(&self, node: NodeId) -> u64 {
        self.executors[node.index()].applied_through()
    }

    /// Whether `node`'s executor runs `"sharded"` or `"serial"`.
    #[must_use]
    pub fn executor_kind(&self, node: NodeId) -> &'static str {
        self.executors[node.index()].mode()
    }

    /// The telemetry registry of `node`'s process, if it exposes one
    /// (see [`simnet::Process::telemetry`]). Live — counters advance while
    /// the replica thread runs.
    #[must_use]
    pub fn registry(&self, node: NodeId) -> Option<&Arc<Registry>> {
        self.registries[node.index()].as_ref()
    }

    /// Wall-clock time since the cluster started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops every replica thread, waits for them to exit, and fails any
    /// session tickets still waiting for a reply.
    pub fn shutdown(self) {
        for tx in self.senders.iter() {
            let _ = tx.send(Envelope::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
        self.session.close("cluster shut down");
    }
}

struct ClusterTransport<M> {
    senders: Arc<Vec<Sender<Envelope<M>>>>,
}

impl<M: Send> SubmitTransport for ClusterTransport<M> {
    fn submit(&self, node: NodeId, cmd: Command, _delay_us: u64) -> Result<(), SessionError> {
        self.senders
            .get(node.index())
            .ok_or_else(|| SessionError::Rejected(format!("no replica {node}")))?
            .send(Envelope::Client { cmd })
            .map_err(|_| SessionError::Disconnected(format!("replica {node} is gone")))
    }
}

impl<P> ClusterHandle for Cluster<P>
where
    P: Process + Send + 'static,
    P::Message: Send + 'static,
{
    fn nodes(&self) -> usize {
        self.senders.len()
    }

    fn client(&self, node: NodeId) -> ClientHandle {
        ClientHandle::new(
            node,
            Arc::clone(&self.session),
            Arc::new(ClusterTransport { senders: Arc::clone(&self.senders) }),
            Arc::new(ParkDrive),
        )
    }
}

/// Per-thread replica state: channel plumbing, timer queue, state machine.
struct ReplicaLoop<M> {
    id: NodeId,
    nodes: usize,
    rx: Receiver<Envelope<M>>,
    peers: Arc<Vec<Sender<Envelope<M>>>>,
    latency: LatencyMatrix,
    scale: f64,
    decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    session: Arc<SessionCore>,
    started: Instant,
    executors: Arc<Vec<Executor>>,
    /// Proposer batching knobs (disabled ⇒ the drain loop never runs).
    batch: BatchConfig,
    /// Allocates this replica's batch-lane unit ids.
    batcher: Batcher,
    /// Non-client envelopes pulled off the channel while draining a batch;
    /// processed before the channel is consulted again.
    stash: VecDeque<Envelope<M>>,
    timers: Vec<(Instant, M)>,
    /// Where drained lifecycle spans land; `None` when the process exposes
    /// no registry (tracing is then skipped entirely).
    registry: Option<Arc<Registry>>,
    /// Wall-clock µs at `started`: rebases span timestamps onto the wall
    /// clock (see [`telemetry::wall_clock_us`]).
    wall0: u64,
}

impl<M: Send> ReplicaLoop<M> {
    fn now_us(&self) -> SimTime {
        self.started.elapsed().as_micros() as SimTime
    }

    fn run<P: Process<Message = M>>(&mut self, process: &mut P) {
        let mut outbox: Vec<(NodeId, M)> = Vec::new();
        let mut new_timers: Vec<(SimTime, M)> = Vec::new();
        let mut executions: Vec<Execution> = Vec::new();
        let mut spans: Vec<SpanEvent> = Vec::new();

        {
            let mut ctx = Context::for_runtime(
                self.id,
                self.nodes,
                self.now_us(),
                &mut outbox,
                &mut new_timers,
                &mut executions,
            )
            .with_spans(&mut spans);
            process.on_start(&mut ctx);
        }
        self.flush(process, &mut outbox, &mut new_timers, &mut executions, &mut spans);

        loop {
            let envelope = match self.stash.pop_front() {
                Some(envelope) => Ok(envelope),
                None => self.rx.recv_timeout(Duration::from_millis(1)),
            };
            match envelope {
                Ok(Envelope::Shutdown) => return,
                Ok(Envelope::Message { from, msg, deliver_at }) => {
                    let wait = deliver_at.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    let mut ctx = Context::for_runtime(
                        self.id,
                        self.nodes,
                        self.now_us(),
                        &mut outbox,
                        &mut new_timers,
                        &mut executions,
                    )
                    .with_spans(&mut spans);
                    process.on_message(from, msg, &mut ctx);
                }
                Ok(Envelope::Client { cmd }) => {
                    // Group commit: fold every client command already queued
                    // on the channel into one consensus unit, amortising the
                    // ordering round trips across the whole batch.
                    let mut queued = vec![cmd];
                    while self.batch.enabled() && queued.len() < self.batch.max_batch {
                        match self.rx.try_recv() {
                            Ok(Envelope::Client { cmd }) => queued.push(cmd),
                            Ok(other) => {
                                self.stash.push_back(other);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    if queued.len() > 1 {
                        if let Some(registry) = &self.registry {
                            registry.counter("batch.assembled").inc();
                            registry.counter("batch.commands").add(queued.len() as u64);
                        }
                    }
                    let mut ctx = Context::for_runtime(
                        self.id,
                        self.nodes,
                        self.now_us(),
                        &mut outbox,
                        &mut new_timers,
                        &mut executions,
                    )
                    .with_spans(&mut spans);
                    for cmd in &queued {
                        ctx.trace(TracePhase::Submit, cmd.id());
                    }
                    let unit = self.batcher.coalesce(queued);
                    process.on_client_command(unit, &mut ctx);
                }
                Err(_) => {}
            }
            self.flush(process, &mut outbox, &mut new_timers, &mut executions, &mut spans);
        }
    }

    /// Routes buffered sends/timers, fires due timers, and publishes the
    /// executions the callbacks produced.
    fn flush<P: Process<Message = M>>(
        &mut self,
        process: &mut P,
        outbox: &mut Vec<(NodeId, M)>,
        new_timers: &mut Vec<(SimTime, M)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) {
        for (to, msg) in outbox.drain(..) {
            let delay_us = (self.latency.one_way(self.id, to) as f64 * self.scale) as u64;
            let deliver_at = Instant::now() + Duration::from_micros(delay_us);
            let _ =
                self.peers[to.index()].send(Envelope::Message { from: self.id, msg, deliver_at });
        }
        for (delay, msg) in new_timers.drain(..) {
            let scaled = Duration::from_micros((delay as f64 * self.scale) as u64);
            self.timers.push((Instant::now() + scaled, msg));
        }
        // Deliver any due timers synchronously (cheap polling model).
        let now = Instant::now();
        let (due, later): (Vec<_>, Vec<_>) = self.timers.drain(..).partition(|(at, _)| *at <= now);
        self.timers = later;
        for (_, msg) in due {
            let mut outbox2 = Vec::new();
            let mut new_timers2 = Vec::new();
            {
                let mut ctx = Context::for_runtime(
                    self.id,
                    self.nodes,
                    self.now_us(),
                    &mut outbox2,
                    &mut new_timers2,
                    executions,
                )
                .with_spans(spans);
                process.on_message(self.id, msg, &mut ctx);
            }
            for (to, msg) in outbox2 {
                let delay_us = (self.latency.one_way(self.id, to) as f64 * self.scale) as u64;
                let deliver_at = Instant::now() + Duration::from_micros(delay_us);
                let _ = self.peers[to.index()].send(Envelope::Message {
                    from: self.id,
                    msg,
                    deliver_at,
                });
            }
            for (delay, msg) in new_timers2 {
                let scaled = Duration::from_micros((delay as f64 * self.scale) as u64);
                self.timers.push((Instant::now() + scaled, msg));
            }
        }
        match &self.registry {
            Some(registry) => {
                for span in spans.iter_mut() {
                    span.at += self.wall0;
                }
                registry.record_spans(spans);
            }
            None => spans.clear(),
        }
        self.publish(executions);
    }

    /// Applies executions to the replica's store, records their decisions,
    /// and answers session clients whose commands were submitted here.
    /// The whole round goes through the executor at once so non-conflicting
    /// units can fan out across its shards; batched units unpack here, with
    /// each inner command answered individually.
    fn publish(&mut self, executions: &mut Vec<Execution>) {
        if executions.is_empty() {
            return;
        }
        let units: Vec<Command> = executions.iter().map(|e| e.command.clone()).collect();
        let outputs = self.executors[self.id.index()].apply_round(&units);
        let mut batch = Vec::with_capacity(executions.len());
        let mut runtime_spans: Vec<SpanEvent> = Vec::new();
        let wall_now = telemetry::wall_clock_us();
        for (execution, leaf_outputs) in executions.drain(..).zip(outputs) {
            for (leaf, output) in execution.command.leaves().iter().zip(leaf_outputs) {
                let id = leaf.id();
                if self.registry.is_some() {
                    runtime_spans.push(SpanEvent {
                        command: id,
                        phase: TracePhase::Execute,
                        at: wall_now,
                        node: self.id,
                    });
                }
                if id.origin() == self.id {
                    if self.registry.is_some() {
                        runtime_spans.push(SpanEvent {
                            command: id,
                            phase: TracePhase::Reply,
                            at: wall_now,
                            node: self.id,
                        });
                    }
                    let mut decision = execution.decision.clone();
                    decision.command = id;
                    self.session.complete(Reply { command: id, node: self.id, output, decision });
                }
            }
            batch.push(execution.decision);
        }
        if let Some(registry) = &self.registry {
            registry.record_spans(&mut runtime_spans);
        }
        self.decisions.lock().entry(self.id).or_default().extend(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar::{CaesarConfig, CaesarReplica};
    use consensus_core::session::Op;
    use consensus_types::CommandId;
    use epaxos::{EpaxosConfig, EpaxosReplica};

    #[test]
    fn caesar_cluster_executes_commands_on_real_threads() {
        let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
        let caesar = CaesarConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
        for i in 0..3u64 {
            cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), i + 1), 7, i));
        }
        let decisions = cluster.wait_for_decisions(NodeId(0), 3, Duration::from_secs(10));
        assert_eq!(decisions.len(), 3);
        cluster.shutdown();
    }

    #[test]
    fn epaxos_cluster_executes_conflicting_commands_consistently() {
        let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
        let epaxos = EpaxosConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| EpaxosReplica::new(id, epaxos.clone()));
        cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
        cluster.submit(NodeId(1), Command::put(CommandId::new(NodeId(1), 1), 7, 2));
        let d0 = cluster.wait_for_decisions(NodeId(0), 2, Duration::from_secs(10));
        let d1 = cluster.wait_for_decisions(NodeId(1), 2, Duration::from_secs(10));
        assert_eq!(d0.len(), 2);
        assert_eq!(d1.len(), 2);
        let order0: Vec<CommandId> = d0.iter().map(|d| d.command).collect();
        let order1: Vec<CommandId> = d1.iter().map(|d| d.command).collect();
        assert_eq!(order0, order1, "conflicting commands must execute in the same order");
        cluster.shutdown();
    }

    #[test]
    fn session_clients_submit_and_await_replies() {
        let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.002);
        let caesar = CaesarConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
        let client = cluster.client(NodeId(2));
        let write = client.submit(Op::put(9, 77)).expect("submits");
        let reply = write.wait().expect("replies");
        assert_eq!(reply.node, NodeId(2));
        // Read-your-writes at the submitting replica.
        let read = client.submit(Op::get(9)).expect("submits").wait().expect("replies");
        assert_eq!(read.output, Some(77));
        cluster.shutdown();
    }

    #[test]
    fn shutdown_fails_outstanding_tickets_instead_of_hanging() {
        // Single-node "cluster" of a 5-replica protocol: no quorum can ever
        // form, so the submitted command cannot complete.
        let config = ClusterConfig::new(LatencyMatrix::uniform(1, 1.0));
        let caesar = CaesarConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
        let ticket = cluster.client(NodeId(0)).submit(Op::put(1, 1)).expect("submits");
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        cluster.shutdown();
        match waiter.join().expect("waiter thread") {
            Err(SessionError::Disconnected(_)) => {}
            other => panic!("expected a disconnect error, got {other:?}"),
        }
    }
}
