//! A real-time, multi-threaded in-process cluster.
//!
//! The discrete-event simulator (`simnet`) measures protocol behaviour in
//! *simulated* time. This crate complements it with a wall-clock runtime: one
//! OS thread per replica, crossbeam channels as links, and a delay thread
//! that injects the configured WAN latency into every message. It exercises
//! the exact same [`simnet::Process`] implementations (CAESAR, EPaxos, …)
//! without any code change, and is used by the `cluster_smoke` integration
//! test and the quickstart example to show the protocols running on real
//! threads.
//!
//! Latencies are scaled down by a configurable factor so a five-site WAN
//! round trip does not make tests take minutes of wall-clock time.
//!
//! # Example
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use cluster::{Cluster, ClusterConfig};
//! use consensus_types::{Command, CommandId, NodeId};
//! use simnet::LatencyMatrix;
//!
//! let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.01);
//! let caesar = CaesarConfig::new(5);
//! let mut cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
//! cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
//! let decisions = cluster.wait_for_decisions(NodeId(0), 1, std::time::Duration::from_secs(5));
//! assert_eq!(decisions.len(), 1);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_types::{Command, Decision, NodeId, SimTime};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use simnet::{Context, LatencyMatrix, Process};

/// Configuration of a real-time cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// WAN latency matrix (same format as the simulator's).
    pub latency: LatencyMatrix,
    /// Multiplier applied to every latency before sleeping (e.g. `0.01` turns
    /// a 93 ms one-way delay into 0.93 ms so tests stay fast).
    pub latency_scale: f64,
}

impl ClusterConfig {
    /// Creates a configuration with real (unscaled) latencies.
    #[must_use]
    pub fn new(latency: LatencyMatrix) -> Self {
        Self { latency, latency_scale: 1.0 }
    }

    /// Sets the latency scale factor.
    #[must_use]
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale;
        self
    }
}

enum Envelope<M> {
    Message { from: NodeId, msg: M, deliver_at: Instant },
    Client { cmd: Command },
    Shutdown,
}

/// A running cluster of replica threads.
pub struct Cluster<P: Process> {
    senders: Vec<Sender<Envelope<P::Message>>>,
    handles: Vec<JoinHandle<()>>,
    decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    started_at: Instant,
}

impl<P> Cluster<P>
where
    P: Process + Send + 'static,
    P::Message: Send + 'static,
{
    /// Spawns one replica thread per node in the latency matrix.
    #[must_use]
    pub fn start(config: ClusterConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        let nodes = config.latency.nodes();
        let started_at = Instant::now();
        let decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let mut senders = Vec::with_capacity(nodes);
        let mut receivers: Vec<Receiver<Envelope<P::Message>>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(nodes);
        for (index, rx) in receivers.into_iter().enumerate() {
            let id = NodeId::from_index(index);
            let mut process = make(id);
            let peers = senders.clone();
            let latency = config.latency.clone();
            let scale = config.latency_scale;
            let decisions = Arc::clone(&decisions);
            let started = started_at;
            handles.push(std::thread::spawn(move || {
                replica_loop(
                    id,
                    nodes,
                    &mut process,
                    rx,
                    &peers,
                    &latency,
                    scale,
                    &decisions,
                    started,
                );
            }));
        }
        Self { senders, handles, decisions, started_at }
    }

    /// Submits a client command to `node`.
    pub fn submit(&self, node: NodeId, cmd: Command) {
        let _ = self.senders[node.index()].send(Envelope::Client { cmd });
    }

    /// Decisions executed so far at `node`.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> Vec<Decision> {
        self.decisions.lock().get(&node).cloned().unwrap_or_default()
    }

    /// Blocks until `node` has executed at least `count` commands or the
    /// timeout elapses; returns whatever has been executed by then.
    #[must_use]
    pub fn wait_for_decisions(
        &self,
        node: NodeId,
        count: usize,
        timeout: Duration,
    ) -> Vec<Decision> {
        let deadline = Instant::now() + timeout;
        loop {
            let current = self.decisions(node);
            if current.len() >= count || Instant::now() >= deadline {
                return current;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Wall-clock time since the cluster started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops every replica thread and waits for them to exit.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_loop<P: Process>(
    id: NodeId,
    nodes: usize,
    process: &mut P,
    rx: Receiver<Envelope<P::Message>>,
    peers: &[Sender<Envelope<P::Message>>],
    latency: &LatencyMatrix,
    scale: f64,
    decisions: &Mutex<HashMap<NodeId, Vec<Decision>>>,
    started: Instant,
) {
    // Timers (self-scheduled messages) are kept local and polled alongside
    // the channel.
    let mut timers: Vec<(Instant, P::Message)> = Vec::new();
    let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
    let mut new_timers: Vec<(SimTime, P::Message)> = Vec::new();

    let now_us = |started: Instant| -> SimTime { started.elapsed().as_micros() as SimTime };

    {
        let mut ctx =
            Context::for_runtime(id, nodes, now_us(started), &mut outbox, &mut new_timers);
        process.on_start(&mut ctx);
    }
    flush(
        id,
        process,
        &mut outbox,
        &mut new_timers,
        &mut timers,
        peers,
        latency,
        scale,
        decisions,
        started,
    );

    loop {
        let envelope = rx.recv_timeout(Duration::from_millis(1));
        match envelope {
            Ok(Envelope::Shutdown) => return,
            Ok(Envelope::Message { from, msg, deliver_at }) => {
                let wait = deliver_at.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                let mut ctx =
                    Context::for_runtime(id, nodes, now_us(started), &mut outbox, &mut new_timers);
                process.on_message(from, msg, &mut ctx);
            }
            Ok(Envelope::Client { cmd }) => {
                let mut ctx =
                    Context::for_runtime(id, nodes, now_us(started), &mut outbox, &mut new_timers);
                process.on_client_command(cmd, &mut ctx);
            }
            Err(_) => {}
        }
        flush(
            id,
            process,
            &mut outbox,
            &mut new_timers,
            &mut timers,
            peers,
            latency,
            scale,
            decisions,
            started,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn flush<P: Process>(
    id: NodeId,
    process: &mut P,
    outbox: &mut Vec<(NodeId, P::Message)>,
    new_timers: &mut Vec<(SimTime, P::Message)>,
    timers: &mut Vec<(Instant, P::Message)>,
    peers: &[Sender<Envelope<P::Message>>],
    latency: &LatencyMatrix,
    scale: f64,
    decisions: &Mutex<HashMap<NodeId, Vec<Decision>>>,
    started: Instant,
) {
    for (to, msg) in outbox.drain(..) {
        let delay_us = (latency.one_way(id, to) as f64 * scale) as u64;
        let deliver_at = Instant::now() + Duration::from_micros(delay_us);
        let _ = peers[to.index()].send(Envelope::Message { from: id, msg, deliver_at });
    }
    for (delay, msg) in new_timers.drain(..) {
        let scaled = Duration::from_micros((delay as f64 * scale) as u64);
        timers.push((Instant::now() + scaled, msg));
    }
    // Deliver any due timers synchronously (cheap polling model).
    let now = Instant::now();
    let (due, later): (Vec<_>, Vec<_>) = timers.drain(..).partition(|(at, _)| *at <= now);
    *timers = later;
    for (_, msg) in due {
        let mut outbox2 = Vec::new();
        let mut timers2 = Vec::new();
        {
            let mut ctx = Context::for_runtime(
                id,
                peers.len(),
                started.elapsed().as_micros() as SimTime,
                &mut outbox2,
                &mut timers2,
            );
            process.on_message(id, msg, &mut ctx);
        }
        for (to, msg) in outbox2 {
            let delay_us = (latency.one_way(id, to) as f64 * scale) as u64;
            let deliver_at = Instant::now() + Duration::from_micros(delay_us);
            let _ = peers[to.index()].send(Envelope::Message { from: id, msg, deliver_at });
        }
        for (delay, msg) in timers2 {
            let scaled = Duration::from_micros((delay as f64 * scale) as u64);
            timers.push((Instant::now() + scaled, msg));
        }
    }
    let executed = process.drain_decisions();
    if !executed.is_empty() {
        decisions.lock().entry(id).or_default().extend(executed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar::{CaesarConfig, CaesarReplica};
    use consensus_types::CommandId;
    use epaxos::{EpaxosConfig, EpaxosReplica};

    #[test]
    fn caesar_cluster_executes_commands_on_real_threads() {
        let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
        let caesar = CaesarConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
        for i in 0..3u64 {
            cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), i + 1), 7, i));
        }
        let decisions = cluster.wait_for_decisions(NodeId(0), 3, Duration::from_secs(10));
        assert_eq!(decisions.len(), 3);
        cluster.shutdown();
    }

    #[test]
    fn epaxos_cluster_executes_conflicting_commands_consistently() {
        let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
        let epaxos = EpaxosConfig::new(5).with_recovery_timeout(None);
        let cluster = Cluster::start(config, move |id| EpaxosReplica::new(id, epaxos.clone()));
        cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
        cluster.submit(NodeId(1), Command::put(CommandId::new(NodeId(1), 1), 7, 2));
        let d0 = cluster.wait_for_decisions(NodeId(0), 2, Duration::from_secs(10));
        let d1 = cluster.wait_for_decisions(NodeId(1), 2, Duration::from_secs(10));
        assert_eq!(d0.len(), 2);
        assert_eq!(d1.len(), 2);
        let order0: Vec<CommandId> = d0.iter().map(|d| d.command).collect();
        let order1: Vec<CommandId> = d1.iter().map(|d| d.command).collect();
        assert_eq!(order0, order1, "conflicting commands must execute in the same order");
        cluster.shutdown();
    }
}
