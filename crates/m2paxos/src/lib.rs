//! M²Paxos baseline: multi-leader consensus with per-object ownership.
//!
//! M²Paxos (Peluso et al., DSN 2016) gives every key an *owner* replica. The
//! owner orders commands on its keys with a single Accept round over a
//! classic quorum (two communication delays) and without exchanging
//! dependencies. A command submitted at a replica that does not own the key
//! is **forwarded** to the owner — the extra WAN hop that degrades M²Paxos as
//! the conflict rate grows in Figures 6, 8 and 9 of the CAESAR paper.
//! Unowned keys are acquired by the first proposer as part of the accept
//! round.
//!
//! # Quorums, conflicts and recovery
//!
//! * **Quorums.** The key's owner commits through one Accept round over a
//!   classic quorum of `⌊N/2⌋+1` replicas (3 of 5); acquiring an unowned
//!   key rides the same round. There is no fast path.
//! * **Conflict condition.** Two commands conflict when they touch the same
//!   key; each key's commands are totally ordered by its owner's per-key
//!   sequence numbers, while different keys proceed independently.
//! * **Recovery semantics.** The execution gate is a per-object slot
//!   vector: for every key, the next per-key sequence to execute.
//!   [`simnet::Process::execution_cursor`] reports
//!   [`consensus_types::ExecutionCursor::PerObject`] — one
//!   [`consensus_types::ObjectCursor`] per key carrying the ownership
//!   `(owner, epoch)`, the next-execute sequence, a `next_assign` lower
//!   bound (so a restarted *owner* never reuses a sequence number its
//!   previous incarnation assigned), and the decided-but-unexecuted
//!   backlog. `on_state_transfer` restores the ownership table (a restarted
//!   replica must know which keys it still owns, and who owns the rest, or
//!   it would re-acquire keys and fork per-key orders), fast-forwards every
//!   per-key cursor, installs backlogs and drains what became executable.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use m2paxos::{M2PaxosConfig, M2PaxosReplica};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! let config = M2PaxosConfig::new(5);
//! let mut sim = Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), |id| {
//!     M2PaxosReplica::new(id, config.clone())
//! });
//! sim.schedule_command(0, NodeId(2), Command::put(CommandId::new(NodeId(2), 1), 7, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(2)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use consensus_types::{
    Command, CommandId, Decision, DecisionPath, ExecutionCursor, LatencyBreakdown, NodeId,
    ObjectCursor, QuorumSpec, SimTime, StateTransfer, Timestamp,
};
use serde::{Deserialize, Serialize};
use simnet::{Context, Process};
use telemetry::{Counter, Registry, TracePhase};

/// Configuration of an M²Paxos replica.
#[derive(Debug, Clone)]
pub struct M2PaxosConfig {
    /// Classic quorum specification.
    pub quorums: QuorumSpec,
    /// Base CPU cost per protocol message (microseconds).
    pub message_cost_us: SimTime,
}

impl M2PaxosConfig {
    /// Configuration for `nodes` replicas.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self { quorums: QuorumSpec::new(nodes), message_cost_us: 11 }
    }
}

/// Messages of the M²Paxos protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum M2PaxosMessage {
    /// Non-owner → owner: please order this command on your key.
    Forward {
        /// The command to order.
        cmd: Command,
    },
    /// Owner → all: accept `cmd` as the `seq`-th command on its key; the
    /// accept also (re)asserts the sender's ownership of the key.
    Accept {
        /// The command.
        cmd: Command,
        /// Per-key sequence number assigned by the owner.
        seq: u64,
        /// Ownership epoch (bumped on acquisition).
        epoch: u64,
    },
    /// Replica → owner: accept acknowledgement.
    AcceptReply {
        /// The command being acknowledged.
        cmd_id: CommandId,
    },
    /// Owner → all: the command is decided.
    Commit {
        /// The command.
        cmd: Command,
        /// Per-key sequence number.
        seq: u64,
    },
}

/// A point-in-time copy of the counters kept by an M²Paxos replica.
///
/// The live values are registry metrics (`m2paxos.owned_decisions`,
/// `m2paxos.forwarded`, `m2paxos.acquisitions`, `commands.executed`),
/// reachable through [`simnet::Process::telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct M2PaxosMetrics {
    /// Commands ordered locally (this replica owned the key).
    pub owned_decisions: u64,
    /// Commands forwarded to a remote owner.
    pub forwarded: u64,
    /// Keys acquired by this replica.
    pub acquisitions: u64,
    /// Commands executed locally.
    pub commands_executed: u64,
}

/// The registry handles behind [`M2PaxosMetrics`].
#[derive(Debug)]
struct M2PaxosCounters {
    owned_decisions: Counter,
    forwarded: Counter,
    acquisitions: Counter,
    commands_executed: Counter,
}

impl M2PaxosCounters {
    fn register(registry: &Registry) -> Self {
        Self {
            owned_decisions: registry.counter("m2paxos.owned_decisions"),
            forwarded: registry.counter("m2paxos.forwarded"),
            acquisitions: registry.counter("m2paxos.acquisitions"),
            commands_executed: registry.counter("commands.executed"),
        }
    }

    fn snapshot(&self) -> M2PaxosMetrics {
        M2PaxosMetrics {
            owned_decisions: self.owned_decisions.get(),
            forwarded: self.forwarded.get(),
            acquisitions: self.acquisitions.get(),
            commands_executed: self.commands_executed.get(),
        }
    }
}

/// The single ownership key of a consensus unit: a plain command's key, or
/// the one distinct key of a single-key batch. `None` for keyless units
/// (which conflict with nothing) *and* for multi-key batches — the latter
/// never reach the ordering path because `on_client_command` splits them.
fn unit_key(cmd: &Command) -> Option<u64> {
    let mut keys = cmd.accesses().map(|(key, _)| key);
    let first = keys.next()?;
    keys.all(|key| key == first).then_some(first)
}

#[derive(Debug)]
struct PendingAccept {
    cmd: Command,
    seq: u64,
    acks: usize,
}

/// An M²Paxos replica implementing [`simnet::Process`].
#[derive(Debug)]
pub struct M2PaxosReplica {
    id: NodeId,
    config: M2PaxosConfig,
    /// Key → (owner, epoch). Keys absent from the map are unowned.
    owners: HashMap<u64, (NodeId, u64)>,
    /// Per-key next sequence number (meaningful at the owner).
    next_seq: HashMap<u64, u64>,
    /// In-flight accepts coordinated by this replica.
    pending: HashMap<CommandId, PendingAccept>,
    /// Per-key committed-but-not-executed commands, ordered by sequence.
    committed: HashMap<u64, BTreeMap<u64, Command>>,
    /// Per-key next sequence number to execute.
    next_exec: HashMap<u64, u64>,
    /// Locally submitted commands → submission time.
    pending_local: HashMap<CommandId, SimTime>,
    registry: Arc<Registry>,
    metrics: M2PaxosCounters,
}

impl M2PaxosReplica {
    /// Creates a replica.
    #[must_use]
    pub fn new(id: NodeId, config: M2PaxosConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = M2PaxosCounters::register(&registry);
        Self {
            id,
            config,
            owners: HashMap::new(),
            next_seq: HashMap::new(),
            pending: HashMap::new(),
            committed: HashMap::new(),
            next_exec: HashMap::new(),
            pending_local: HashMap::new(),
            registry,
            metrics,
        }
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A snapshot of the protocol counters.
    #[must_use]
    pub fn metrics(&self) -> M2PaxosMetrics {
        self.metrics.snapshot()
    }

    /// Number of commands executed locally.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.metrics.commands_executed.get() as usize
    }

    /// The current owner of `key`, if any.
    #[must_use]
    pub fn owner_of(&self, key: u64) -> Option<NodeId> {
        self.owners.get(&key).map(|(n, _)| *n)
    }

    fn lead(&mut self, cmd: Command, ctx: &mut Context<'_, M2PaxosMessage>) {
        debug_assert!(
            unit_key(&cmd).is_some() || cmd.accesses().next().is_none(),
            "multi-key batches are split before they reach the ordering path"
        );
        let Some(key) = unit_key(&cmd) else {
            // A command with no key conflicts with nothing: decide it locally.
            self.execute(cmd, ctx);
            return;
        };
        let epoch = match self.owners.get(&key) {
            Some((owner, epoch)) if *owner == self.id => *epoch,
            Some((_, epoch)) => {
                // We are taking over ownership (the evaluation only reaches
                // this through explicit acquisition scenarios).
                let epoch = epoch + 1;
                self.metrics.acquisitions.inc();
                self.owners.insert(key, (self.id, epoch));
                epoch
            }
            None => {
                // Unowned key: acquire it as part of the accept round.
                self.metrics.acquisitions.inc();
                self.owners.insert(key, (self.id, 1));
                1
            }
        };
        let seq = self.next_seq.entry(key).or_insert(0);
        let my_seq = *seq;
        *seq += 1;
        self.metrics.owned_decisions.inc();
        self.pending.insert(cmd.id(), PendingAccept { cmd: cmd.clone(), seq: my_seq, acks: 1 });
        ctx.trace(TracePhase::Propose, cmd.id());
        ctx.broadcast_others(M2PaxosMessage::Accept { cmd, seq: my_seq, epoch });
    }

    fn commit(&mut self, cmd: Command, seq: u64, ctx: &mut Context<'_, M2PaxosMessage>) {
        let Some(key) = unit_key(&cmd) else {
            ctx.trace(TracePhase::Commit, cmd.id());
            self.execute(cmd, ctx);
            return;
        };
        let already_executed = self.next_exec.get(&key).copied().unwrap_or(0) > seq;
        let per_key = self.committed.entry(key).or_default();
        if !already_executed && !per_key.contains_key(&seq) {
            ctx.trace(TracePhase::Commit, cmd.id());
        }
        per_key.insert(seq, cmd);
        self.execute_ready(key, ctx);
    }

    fn execute_ready(&mut self, key: u64, ctx: &mut Context<'_, M2PaxosMessage>) {
        loop {
            let next = *self.next_exec.entry(key).or_insert(0);
            let Some(per_key) = self.committed.get_mut(&key) else { return };
            let Some(cmd) = per_key.remove(&next) else { return };
            *self.next_exec.get_mut(&key).expect("present") += 1;
            self.execute(cmd, ctx);
        }
    }

    fn execute(&mut self, cmd: Command, ctx: &mut Context<'_, M2PaxosMessage>) {
        let now = ctx.now();
        self.metrics.commands_executed.inc();
        let proposed_at = self.pending_local.remove(&cmd.id()).unwrap_or(now);
        let decision = Decision {
            command: cmd.id(),
            timestamp: Timestamp::ZERO,
            path: DecisionPath::Ordered,
            proposed_at,
            executed_at: now,
            breakdown: LatencyBreakdown::default(),
        };
        ctx.deliver(cmd, decision);
    }
}

impl Process for M2PaxosReplica {
    type Message = M2PaxosMessage;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, M2PaxosMessage>) {
        // M²Paxos orders each unit through exactly one key's owner, so a
        // batch spanning several keys cannot ride a single per-key sequence.
        // Split it into its inner commands — each routes to its own key's
        // owner independently, and no protocol message ever carries a
        // multi-key batch. Single-key batches (the common case under a hot
        // key) keep the full batching benefit.
        if cmd.is_batch() && unit_key(&cmd).is_none() && cmd.accesses().next().is_some() {
            for inner in cmd.inner().to_vec() {
                self.on_client_command(inner, ctx);
            }
            return;
        }
        self.pending_local.insert(cmd.id(), ctx.now());
        match unit_key(&cmd).and_then(|k| self.owner_of(k)) {
            Some(owner) if owner != self.id => {
                // Forward to the key's owner: the extra hop the paper blames
                // for M²Paxos's degradation under conflicts.
                self.metrics.forwarded.inc();
                ctx.send(owner, M2PaxosMessage::Forward { cmd });
            }
            _ => self.lead(cmd, ctx),
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: M2PaxosMessage,
        ctx: &mut Context<'_, M2PaxosMessage>,
    ) {
        match msg {
            M2PaxosMessage::Forward { cmd } => {
                // If ownership moved on, forward again towards the new owner.
                match unit_key(&cmd).and_then(|k| self.owner_of(k)) {
                    Some(owner) if owner != self.id => {
                        ctx.send(owner, M2PaxosMessage::Forward { cmd });
                    }
                    _ => self.lead(cmd, ctx),
                }
            }
            M2PaxosMessage::Accept { cmd, seq: _, epoch } => {
                if let Some(key) = unit_key(&cmd) {
                    // Record (or learn) the ownership asserted by the accept.
                    let entry = self.owners.entry(key).or_insert((from, epoch));
                    if epoch >= entry.1 {
                        *entry = (from, epoch);
                    }
                }
                ctx.send(from, M2PaxosMessage::AcceptReply { cmd_id: cmd.id() });
            }
            M2PaxosMessage::AcceptReply { cmd_id } => {
                let classic = self.config.quorums.classic();
                let Some(pending) = self.pending.get_mut(&cmd_id) else { return };
                pending.acks += 1;
                if pending.acks == classic {
                    let PendingAccept { cmd, seq, .. } =
                        self.pending.remove(&cmd_id).expect("present");
                    ctx.trace(TracePhase::QuorumReached, cmd_id);
                    ctx.broadcast_others(M2PaxosMessage::Commit { cmd: cmd.clone(), seq });
                    self.commit(cmd, seq, ctx);
                }
            }
            M2PaxosMessage::Commit { cmd, seq } => {
                self.commit(cmd, seq, ctx);
            }
        }
    }

    fn execution_cursor(&self) -> ExecutionCursor {
        // One cursor per key this replica knows anything about: ownership,
        // per-key sequence counters, or a decided backlog.
        let mut keys: std::collections::BTreeSet<u64> = self.owners.keys().copied().collect();
        keys.extend(self.next_exec.keys().copied());
        keys.extend(self.next_seq.keys().copied());
        keys.extend(self.committed.keys().copied());
        let objects = keys
            .into_iter()
            .map(|key| {
                let (owner, epoch) = self.owners.get(&key).copied().unwrap_or((self.id, 0));
                let next_execute = self.next_exec.get(&key).copied().unwrap_or(0);
                let decided_past = self
                    .committed
                    .get(&key)
                    .and_then(|per_key| per_key.keys().next_back())
                    .map_or(0, |seq| seq + 1);
                let next_assign = self
                    .next_seq
                    .get(&key)
                    .copied()
                    .unwrap_or(0)
                    .max(next_execute)
                    .max(decided_past);
                let backlog = self
                    .committed
                    .get(&key)
                    .map(|per_key| {
                        per_key.range(next_execute..).map(|(s, c)| (*s, c.clone())).collect()
                    })
                    .unwrap_or_default();
                ObjectCursor { key, owner, epoch, next_execute, next_assign, backlog }
            })
            .collect();
        ExecutionCursor::PerObject { objects }
    }

    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, M2PaxosMessage>,
    ) {
        let ExecutionCursor::PerObject { objects } = &transfer.cursor else { return };
        for object in objects {
            // Restore ownership (epoch 0 means the donor had no claim): a
            // restarted replica must know which keys it still owns — and
            // who owns the rest — or it would re-acquire keys and fork the
            // per-key orders.
            if object.epoch > 0 {
                let entry = self.owners.entry(object.key).or_insert((object.owner, object.epoch));
                if object.epoch >= entry.1 {
                    *entry = (object.owner, object.epoch);
                }
            }
            let next = self.next_exec.entry(object.key).or_insert(0);
            *next = (*next).max(object.next_execute);
            let cursor = *next;
            let per_key = self.committed.entry(object.key).or_default();
            for (seq, cmd) in &object.backlog {
                per_key.entry(*seq).or_insert_with(|| cmd.clone());
            }
            // Sequences below the cursor are covered by the snapshot.
            *per_key = per_key.split_off(&cursor);
            if object.epoch > 0 && object.owner == self.id {
                let seq = self.next_seq.entry(object.key).or_insert(0);
                *seq = (*seq).max(object.next_assign);
            }
        }
        let keys: Vec<u64> = objects.iter().map(|object| object.key).collect();
        for key in keys {
            self.execute_ready(key, ctx);
        }
    }

    fn processing_cost(&self, msg: &M2PaxosMessage) -> SimTime {
        let base = self.config.message_cost_us;
        match msg {
            M2PaxosMessage::Forward { .. } | M2PaxosMessage::Accept { .. } => base,
            M2PaxosMessage::AcceptReply { .. } | M2PaxosMessage::Commit { .. } => base / 2 + 1,
        }
    }

    fn client_processing_cost(&self, _cmd: &Command) -> SimTime {
        self.config.message_cost_us
    }

    fn telemetry(&self) -> Option<Arc<Registry>> {
        Some(self.registry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LatencyMatrix, SimConfig, Simulator};

    fn sim() -> Simulator<M2PaxosReplica> {
        let config = M2PaxosConfig::new(5);
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            M2PaxosReplica::new(id, config.clone())
        })
    }

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn owner_decides_in_one_quorum_round() {
        let mut s = sim();
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.run();
        let d = &s.decisions(NodeId(0))[0];
        // Virginia's quorum (Ohio + Ireland) is within ~75 ms RTT.
        assert!(d.latency() < 100_000, "latency {}", d.latency());
        assert_eq!(s.process(NodeId(0)).metrics().acquisitions, 1);
        assert_eq!(s.process(NodeId(0)).metrics().owned_decisions, 1);
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 1);
        }
    }

    #[test]
    fn non_owner_commands_are_forwarded_to_the_owner() {
        let mut s = sim();
        // Node 0 acquires the key first; node 4 then proposes on the same key.
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.schedule_command(400_000, NodeId(4), put(4, 1, 7));
        s.run();
        assert_eq!(s.process(NodeId(4)).metrics().forwarded, 1);
        let origin_decision = s
            .decisions(NodeId(4))
            .iter()
            .find(|d| d.command == CommandId::new(NodeId(4), 1))
            .expect("executed at origin");
        // Forwarding Mumbai→Virginia (93 ms one way) plus Virginia's quorum
        // round plus the commit back: well above the owner's local latency.
        assert!(origin_decision.latency() > 150_000, "latency {}", origin_decision.latency());
        // Both replicas agree on the per-key order.
        let order_v: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        let order_m: Vec<CommandId> = s.decisions(NodeId(4)).iter().map(|d| d.command).collect();
        assert_eq!(order_v, order_m);
    }

    #[test]
    fn per_key_order_is_identical_on_all_replicas() {
        let mut s = sim();
        for i in 0..12u64 {
            s.schedule_command(i * 150_000, NodeId((i % 5) as u32), put((i % 5) as u32, i, 7));
        }
        s.run();
        let reference: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 12);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = s.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "{node}");
        }
    }

    #[test]
    fn single_key_batches_ride_one_accept_round() {
        let mut s = sim();
        let unit = Command::batch(
            CommandId::new(NodeId(0), (1 << 63) | 1),
            (0..4).map(|i| put(0, i + 1, 7)).collect(),
        );
        s.schedule_command(0, NodeId(0), unit.clone());
        s.run();
        // The whole batch is one owned decision, delivered everywhere.
        assert_eq!(s.process(NodeId(0)).metrics().owned_decisions, 1);
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 1);
            assert_eq!(s.decisions(node)[0].command, unit.id());
        }
    }

    #[test]
    fn multi_key_batches_split_and_route_per_key() {
        let mut s = sim();
        // Node 1 owns key 7 first.
        s.schedule_command(0, NodeId(1), put(1, 1, 7));
        // Node 0 later submits a batch spanning key 7 (owned remotely) and
        // key 8 (unowned): the batch splits, key 8 is acquired locally and
        // key 7's command forwards to node 1.
        let unit = Command::batch(
            CommandId::new(NodeId(0), (1 << 63) | 1),
            vec![put(0, 1, 7), put(0, 2, 8)],
        );
        s.schedule_command(400_000, NodeId(0), unit);
        s.run();
        assert_eq!(s.process(NodeId(0)).metrics().forwarded, 1);
        assert_eq!(s.process(NodeId(0)).metrics().acquisitions, 1);
        // Every replica executes all three inner commands, and the per-key
        // order on key 7 matches everywhere.
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 3, "{node}");
        }
        let order: Vec<CommandId> = s
            .decisions(NodeId(0))
            .iter()
            .map(|d| d.command)
            .filter(|id| *id != CommandId::new(NodeId(0), 2))
            .collect();
        assert_eq!(order, vec![CommandId::new(NodeId(1), 1), CommandId::new(NodeId(0), 1)]);
    }

    #[test]
    fn commands_on_distinct_keys_are_owned_by_their_proposers() {
        let mut s = sim();
        for i in 0..5u32 {
            s.schedule_command(u64::from(i) * 1_000, NodeId(i), put(i, 1, 100 + u64::from(i)));
        }
        s.run();
        for i in 0..5u32 {
            let m = s.process(NodeId(i)).metrics();
            assert_eq!(m.owned_decisions, 1, "node {i} owns its private key");
            assert_eq!(m.forwarded, 0);
        }
    }
}
