//! Mencius baseline: multi-leader consensus with pre-assigned slots.
//!
//! Mencius (Mao et al., OSDI 2008) rotates log ownership round-robin: slot
//! `s` belongs to node `s mod N`. A node orders its commands in its own slots
//! and broadcasts SKIP markers for slots it does not use. Because a replica
//! can only execute slot `s` once it knows the outcome of **every** earlier
//! slot — including slots owned by the farthest node — Mencius "performs as
//! the slowest node" (Section II of the CAESAR paper), which is the behaviour
//! Figure 7 shows.
//!
//! # Quorums, conflicts and recovery
//!
//! * **Quorums.** A slot owner commits through a classic quorum of
//!   `⌊N/2⌋+1` acknowledgements (3 of 5); *delivery* additionally needs
//!   every earlier slot — including every other node's — resolved as a
//!   command or a skip, which is what couples latency to the slowest peer.
//! * **Conflict condition.** None. Slots interleave all proposers into one
//!   total order regardless of what the commands touch.
//! * **Recovery semantics.** The execution gate is the global slot cursor
//!   plus per-leader skip frontiers. [`simnet::Process::execution_cursor`]
//!   reports [`consensus_types::ExecutionCursor::RoundRobin`]: the
//!   next-execute slot, the announced per-leader skip frontiers, per-leader
//!   `next_own` reuse guards (the first slot each leader could safely use
//!   next — a restarted replica resumes proposing there, past its previous
//!   incarnation's slots), and the committed-but-unexecuted backlog.
//!   `on_state_transfer` fast-forwards the cursor, installs frontiers and
//!   backlog, and **broadcasts a fresh skip announcement** covering the
//!   restarted node's own unused (and crashed in-flight) slots — that
//!   announcement is what releases every peer stalled on the crashed
//!   node's slot gap. There is no revocation: while a node is down, peers
//!   keep committing but cannot execute past its first unused slot until
//!   it returns (a ROADMAP follow-up). Caveat of this ballot-less
//!   baseline: the post-restore skip unilaterally declares the crashed
//!   incarnation's in-flight slots empty — a commit known to the donor
//!   always rides the transfer backlog and beats the skip, but a commit
//!   that reached only non-donating survivors resolves divergently (the
//!   same scenario was a permanent stall before; real Mencius revokes
//!   slots through a ballot, see `docs/RECOVERY.md`).
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use mencius::{MenciusConfig, MenciusReplica};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! let config = MenciusConfig::new(5);
//! let mut sim = Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), |id| {
//!     MenciusReplica::new(id, config.clone())
//! });
//! sim.schedule_command(0, NodeId(1), Command::put(CommandId::new(NodeId(1), 1), 7, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(1)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use consensus_types::{
    Command, CommandId, Decision, DecisionPath, ExecutionCursor, LatencyBreakdown, NodeId,
    QuorumSpec, SimTime, StateTransfer, Timestamp,
};
use serde::{Deserialize, Serialize};
use simnet::{Context, Process};
use telemetry::{Counter, Registry, TracePhase};

/// Configuration of a Mencius replica.
#[derive(Debug, Clone)]
pub struct MenciusConfig {
    /// Quorum specification (Mencius still acknowledges proposals through a
    /// majority, but delivery additionally needs every earlier slot
    /// resolved).
    pub quorums: QuorumSpec,
    /// Base CPU cost per protocol message (microseconds).
    pub message_cost_us: SimTime,
}

impl MenciusConfig {
    /// Configuration for `nodes` replicas.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self { quorums: QuorumSpec::new(nodes), message_cost_us: 10 }
    }
}

/// The outcome of a slot: a command or an explicit skip.
#[derive(Debug, Clone)]
enum SlotValue {
    Command(Command),
    Skip,
}

/// Messages of the Mencius protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MenciusMessage {
    /// Slot owner → all: order `cmd` at `slot`.
    Propose {
        /// The slot (owned by the sender: `slot % N == sender`).
        slot: u64,
        /// The command.
        cmd: Command,
    },
    /// Replica → owner: acknowledgement of a proposal.
    Ack {
        /// The slot being acknowledged.
        slot: u64,
    },
    /// Owner → all: the slot is chosen.
    Commit {
        /// The slot.
        slot: u64,
        /// The command.
        cmd: Command,
    },
    /// A node announces that it will not use its own slots below `below`.
    Skip {
        /// The announcing node's slots strictly below this index are no-ops.
        below: u64,
    },
}

/// A point-in-time copy of the counters kept by a Mencius replica.
///
/// The live values are registry metrics (`mencius.proposed`,
/// `mencius.skips_sent`, `commands.executed`), reachable through
/// [`simnet::Process::telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MenciusMetrics {
    /// Commands proposed by this replica.
    pub proposed: u64,
    /// Skip announcements broadcast.
    pub skips_sent: u64,
    /// Commands executed locally.
    pub commands_executed: u64,
}

/// The registry handles behind [`MenciusMetrics`].
#[derive(Debug)]
struct MenciusCounters {
    proposed: Counter,
    skips_sent: Counter,
    commands_executed: Counter,
}

impl MenciusCounters {
    fn register(registry: &Registry) -> Self {
        Self {
            proposed: registry.counter("mencius.proposed"),
            skips_sent: registry.counter("mencius.skips_sent"),
            commands_executed: registry.counter("commands.executed"),
        }
    }

    fn snapshot(&self) -> MenciusMetrics {
        MenciusMetrics {
            proposed: self.proposed.get(),
            skips_sent: self.skips_sent.get(),
            commands_executed: self.commands_executed.get(),
        }
    }
}

/// A Mencius replica implementing [`simnet::Process`].
#[derive(Debug)]
pub struct MenciusReplica {
    id: NodeId,
    config: MenciusConfig,
    /// Next slot owned by this node that has not been used yet.
    next_own_slot: u64,
    /// Highest slot index this node has seen proposed anywhere (used to move
    /// its own skip frontier forward).
    max_seen_slot: u64,
    /// Resolved slots: committed command or skip.
    slots: BTreeMap<u64, SlotValue>,
    /// For each node, its announced skip frontier: all its slots strictly
    /// below this value that carry no command are no-ops.
    skip_frontier: Vec<u64>,
    /// Acks per slot this node is coordinating.
    acks: HashMap<u64, usize>,
    in_flight: HashMap<u64, Command>,
    /// Next slot index to execute.
    next_execute: u64,
    /// Locally proposed commands → proposal time.
    pending_local: HashMap<CommandId, SimTime>,
    registry: Arc<Registry>,
    metrics: MenciusCounters,
}

impl MenciusReplica {
    /// Creates a replica.
    #[must_use]
    pub fn new(id: NodeId, config: MenciusConfig) -> Self {
        let n = config.quorums.nodes();
        let registry = Arc::new(Registry::new());
        let metrics = MenciusCounters::register(&registry);
        Self {
            next_own_slot: id.index() as u64,
            max_seen_slot: 0,
            slots: BTreeMap::new(),
            skip_frontier: vec![0; n],
            acks: HashMap::new(),
            in_flight: HashMap::new(),
            next_execute: 0,
            pending_local: HashMap::new(),
            registry,
            metrics,
            id,
            config,
        }
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A snapshot of the protocol counters.
    #[must_use]
    pub fn metrics(&self) -> MenciusMetrics {
        self.metrics.snapshot()
    }

    /// Number of commands executed locally.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.metrics.commands_executed.get() as usize
    }

    fn owner(&self, slot: u64) -> NodeId {
        NodeId::from_index((slot % self.config.quorums.nodes() as u64) as usize)
    }

    /// Whether `slot` is known to be resolved (committed or skipped).
    fn resolved(&self, slot: u64) -> bool {
        if self.slots.contains_key(&slot) {
            return true;
        }
        let owner = self.owner(slot);
        self.skip_frontier[owner.index()] > slot
    }

    fn execute_ready(&mut self, ctx: &mut Context<'_, MenciusMessage>) {
        let now = ctx.now();
        loop {
            let slot = self.next_execute;
            if !self.resolved(slot) {
                break;
            }
            self.next_execute += 1;
            let value = self.slots.get(&slot).cloned().unwrap_or(SlotValue::Skip);
            if let SlotValue::Command(cmd) = value {
                self.metrics.commands_executed.inc();
                let proposed_at = self.pending_local.remove(&cmd.id()).unwrap_or(now);
                let decision = Decision {
                    command: cmd.id(),
                    timestamp: Timestamp::ZERO,
                    path: DecisionPath::Ordered,
                    proposed_at,
                    executed_at: now,
                    breakdown: LatencyBreakdown::default(),
                };
                ctx.deliver(cmd, decision);
            }
        }
    }

    /// Advances this node's own skip frontier past `slot` and announces it.
    fn advance_skips(&mut self, seen_slot: u64, ctx: &mut Context<'_, MenciusMessage>) {
        self.max_seen_slot = self.max_seen_slot.max(seen_slot);
        let n = self.config.quorums.nodes() as u64;
        if self.next_own_slot < self.max_seen_slot {
            // Our unused slots below the frontier become skips.
            while self.next_own_slot < self.max_seen_slot {
                self.next_own_slot += n;
            }
            self.metrics.skips_sent.inc();
            let below = self.next_own_slot;
            self.skip_frontier[self.id.index()] = below;
            ctx.broadcast_others(MenciusMessage::Skip { below });
            self.execute_ready(ctx);
        }
    }
}

impl Process for MenciusReplica {
    type Message = MenciusMessage;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, MenciusMessage>) {
        let slot = self.next_own_slot;
        self.next_own_slot += self.config.quorums.nodes() as u64;
        self.metrics.proposed.inc();
        self.pending_local.insert(cmd.id(), ctx.now());
        self.acks.insert(slot, 1);
        self.in_flight.insert(slot, cmd.clone());
        self.max_seen_slot = self.max_seen_slot.max(slot);
        ctx.trace(TracePhase::Propose, cmd.id());
        ctx.broadcast_others(MenciusMessage::Propose { slot, cmd });
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: MenciusMessage,
        ctx: &mut Context<'_, MenciusMessage>,
    ) {
        match msg {
            MenciusMessage::Propose { slot, cmd } => {
                let _ = cmd;
                ctx.send(from, MenciusMessage::Ack { slot });
                // Seeing someone else's slot means our earlier unused slots
                // must be skipped so the log can advance.
                self.advance_skips(slot, ctx);
            }
            MenciusMessage::Ack { slot } => {
                let Some(count) = self.acks.get_mut(&slot) else { return };
                *count += 1;
                if *count == self.config.quorums.classic() {
                    let Some(cmd) = self.in_flight.remove(&slot) else { return };
                    self.acks.remove(&slot);
                    ctx.trace(TracePhase::QuorumReached, cmd.id());
                    ctx.trace(TracePhase::Commit, cmd.id());
                    self.slots.insert(slot, SlotValue::Command(cmd.clone()));
                    ctx.broadcast_others(MenciusMessage::Commit { slot, cmd });
                    self.execute_ready(ctx);
                }
            }
            MenciusMessage::Commit { slot, cmd } => {
                if !self.slots.contains_key(&slot) {
                    ctx.trace(TracePhase::Commit, cmd.id());
                }
                self.slots.insert(slot, SlotValue::Command(cmd));
                self.advance_skips(slot, ctx);
                self.execute_ready(ctx);
            }
            MenciusMessage::Skip { below } => {
                let frontier = &mut self.skip_frontier[from.index()];
                *frontier = (*frontier).max(below);
                self.execute_ready(ctx);
            }
        }
    }

    fn execution_cursor(&self) -> ExecutionCursor {
        let n = self.config.quorums.nodes() as u64;
        // Reuse guards: for each leader, the first slot it owns strictly
        // past everything this replica has seen proposed, committed or
        // executed anywhere. A restarted replica resumes proposing at its
        // own guard, so it can never collide with a slot its previous
        // incarnation used (over-shooting only produces extra skips).
        let seen_past = self
            .max_seen_slot
            .max(self.next_execute)
            .max(self.next_own_slot)
            .max(self.slots.keys().next_back().map_or(0, |slot| slot + 1))
            + 1;
        let next_own = (0..n)
            .map(|leader| {
                let start = seen_past.max(self.skip_frontier[leader as usize]);
                first_owned_at_or_after(start, leader, n)
            })
            .collect();
        ExecutionCursor::RoundRobin {
            next_execute: self.next_execute,
            skip_frontier: self.skip_frontier.clone(),
            next_own,
            backlog: self
                .slots
                .range(self.next_execute..)
                .filter_map(|(slot, value)| match value {
                    SlotValue::Command(cmd) => Some((*slot, cmd.clone())),
                    SlotValue::Skip => None,
                })
                .collect(),
        }
    }

    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, MenciusMessage>,
    ) {
        let ExecutionCursor::RoundRobin { next_execute, skip_frontier, next_own, backlog } =
            &transfer.cursor
        else {
            return;
        };
        let me = self.id.index();
        // Learn the donor's committed-but-unexecuted slots and announced
        // frontiers, then jump the cursor past what the snapshot covers.
        for (slot, cmd) in backlog {
            self.slots.entry(*slot).or_insert_with(|| SlotValue::Command(cmd.clone()));
        }
        self.next_execute = self.next_execute.max(*next_execute);
        for (leader, &frontier) in skip_frontier.iter().enumerate().take(self.skip_frontier.len()) {
            self.skip_frontier[leader] = self.skip_frontier[leader].max(frontier);
        }
        if let Some(&own) = next_own.get(me) {
            self.next_own_slot = self.next_own_slot.max(own);
        }
        let horizon = next_own.iter().copied().max().unwrap_or(0);
        self.max_seen_slot = self.max_seen_slot.max(self.next_execute).max(horizon);
        // Our previous incarnation's unused (and crashed in-flight) slots
        // below the reuse guard become skips; announcing them is what
        // releases every peer stalled on our slot gap. Committed slots
        // always beat a skip claim (the slots map wins in `resolved`).
        if self.next_own_slot > self.skip_frontier[me] {
            self.skip_frontier[me] = self.next_own_slot;
            self.metrics.skips_sent.inc();
            ctx.broadcast_others(MenciusMessage::Skip { below: self.next_own_slot });
        }
        // Slots below the cursor are covered by the restored snapshot.
        self.slots = self.slots.split_off(&self.next_execute);
        self.execute_ready(ctx);
    }

    fn processing_cost(&self, msg: &MenciusMessage) -> SimTime {
        let base = self.config.message_cost_us;
        match msg {
            MenciusMessage::Propose { .. } => base,
            MenciusMessage::Ack { .. } | MenciusMessage::Skip { .. } => base / 2 + 1,
            MenciusMessage::Commit { .. } => base / 2 + 1,
        }
    }

    fn client_processing_cost(&self, _cmd: &Command) -> SimTime {
        self.config.message_cost_us
    }

    fn telemetry(&self) -> Option<Arc<Registry>> {
        Some(self.registry.clone())
    }
}

/// The smallest slot `s >= start` with `s % n == leader`.
fn first_owned_at_or_after(start: u64, leader: u64, n: u64) -> u64 {
    let rem = start % n;
    if rem <= leader {
        start - rem + leader
    } else {
        start - rem + n + leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LatencyMatrix, SimConfig, Simulator};

    fn sim() -> Simulator<MenciusReplica> {
        let config = MenciusConfig::new(5);
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            MenciusReplica::new(id, config.clone())
        })
    }

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn single_command_is_executed_on_all_replicas() {
        let mut s = sim();
        s.schedule_command(0, NodeId(1), put(1, 1, 7));
        s.run();
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 1, "{node}");
        }
    }

    #[test]
    fn latency_is_dominated_by_the_slowest_node() {
        // In steady state a command from Virginia must wait for Mumbai's skip
        // announcement before it can execute (slot order), so latency tracks
        // the VA–IN RTT rather than the nearby quorum. The very first slot has
        // no predecessors, so measure the second command.
        let mut s = sim();
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.schedule_command(1_000, NodeId(0), put(0, 2, 7));
        s.run();
        let second = s
            .decisions(NodeId(0))
            .iter()
            .find(|d| d.command == CommandId::new(NodeId(0), 2))
            .expect("executed at origin");
        assert!(
            second.latency() >= 180_000,
            "Mencius latency should track the slowest peer (got {} µs)",
            second.latency()
        );
    }

    #[test]
    fn commands_from_all_sites_execute_in_the_same_order() {
        let mut s = sim();
        for i in 0..15u64 {
            s.schedule_command(i * 20_000, NodeId((i % 5) as u32), put((i % 5) as u32, i, 7));
        }
        s.run();
        let reference: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 15);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = s.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "{node}");
        }
    }

    #[test]
    fn idle_nodes_send_skips_so_the_log_advances() {
        let mut s = sim();
        // Only node 0 proposes; all other nodes must skip their slots.
        for i in 0..5u64 {
            s.schedule_command(i * 50_000, NodeId(0), put(0, i, 7));
        }
        s.run();
        let skips: u64 = NodeId::all(5).map(|n| s.process(n).metrics().skips_sent).sum();
        assert!(skips >= 4, "idle nodes must announce skips (got {skips})");
        assert_eq!(s.decisions(NodeId(0)).len(), 5);
    }
}
