//! Workload generation for the CAESAR evaluation.
//!
//! The paper's benchmark issues 15-byte update commands against a replicated
//! key-value store. A workload is characterised by:
//!
//! * the **conflict percentage** — the probability that a command touches a
//!   key from the shared 100-key pool (and therefore may conflict with
//!   commands from other clients) instead of a private key,
//! * the **client model** — 10 closed-loop clients co-located with every
//!   replica for the latency experiments, or open-loop injection at a target
//!   rate for the throughput experiments,
//! * the **batching** flag for the batched variants of Figure 9.
//!
//! This crate provides the command generator ([`WorkloadGenerator`]) and the
//! client drivers ([`ClosedLoopDriver`], [`OpenLoopSchedule`]) that the
//! harness plugs into the simulator. The closed-loop driver runs on the
//! session API (`consensus_core::session`), so the latency it reports is the
//! true submit→reply time a client of any runtime would observe.
//!
//! # Example
//!
//! ```
//! use consensus_types::NodeId;
//! use workload::{WorkloadConfig, WorkloadGenerator};
//!
//! let config = WorkloadConfig::new(5).with_conflict_percent(30.0);
//! let mut generator = WorkloadGenerator::new(config, 42);
//! let cmd = generator.next_command(NodeId(2), 7);
//! assert_eq!(cmd.id().origin(), NodeId(2));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clients;
mod generator;

pub use clients::{ClosedLoopDriver, OpenLoopSchedule};
pub use generator::{WorkloadConfig, WorkloadGenerator};
