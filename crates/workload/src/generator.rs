//! Conflict-percentage command generation.

use consensus_types::{Command, CommandId, NodeId};
use kvstore::KeySpace;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Parameters of a benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of replicas (commands are attributed to the site that proposes
    /// them).
    pub nodes: usize,
    /// Probability, in percent, that a command accesses the shared key pool.
    /// This is the paper's "conflict percentage" knob (0, 2, 10, 30, 50, 100).
    pub conflict_percent: f64,
    /// Key layout (shared pool size; the paper uses 100).
    pub keyspace: KeySpace,
}

impl WorkloadConfig {
    /// A workload over `nodes` replicas with 0 % conflicts and the paper's
    /// 100-key shared pool.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self { nodes, conflict_percent: 0.0, keyspace: KeySpace::paper_default() }
    }

    /// Sets the conflict percentage (clamped to `[0, 100]`).
    #[must_use]
    pub fn with_conflict_percent(mut self, percent: f64) -> Self {
        self.conflict_percent = percent.clamp(0.0, 100.0);
        self
    }

    /// Sets the key space.
    #[must_use]
    pub fn with_keyspace(mut self, keyspace: KeySpace) -> Self {
        self.keyspace = keyspace;
        self
    }
}

/// Deterministic, seedable command generator implementing the paper's
/// conflict model.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: ChaCha12Rng,
    sequences: Vec<u64>,
    generated: u64,
    conflicting: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with a fixed seed (the same seed always yields the
    /// same command stream).
    #[must_use]
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        Self {
            rng: ChaCha12Rng::seed_from_u64(seed),
            sequences: vec![0; config.nodes],
            generated: 0,
            conflicting: 0,
            config,
        }
    }

    /// The workload parameters.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the next command proposed at `origin` by local client
    /// `client` (the client index only affects which private key is used).
    pub fn next_command(&mut self, origin: NodeId, client: u64) -> Command {
        let seq = &mut self.sequences[origin.index()];
        *seq += 1;
        let id = CommandId::new(origin, *seq);
        self.generated += 1;

        let conflicting = self.rng.gen_range(0.0..100.0) < self.config.conflict_percent;
        let key = if conflicting {
            self.conflicting += 1;
            self.config
                .keyspace
                .shared_key(self.rng.gen_range(0..self.config.keyspace.shared_pool_size()))
        } else {
            let unique = origin.index() as u64 * 10_000 + client;
            self.config.keyspace.private_key(unique, *seq)
        };
        let value = self.rng.gen();
        Command::put(id, key, value)
    }

    /// Number of commands generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Fraction of generated commands that target the shared pool.
    #[must_use]
    pub fn observed_conflict_ratio(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.conflicting as f64 / self.generated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn command_ids_are_unique_and_attributed_to_the_origin() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::new(3), 1);
        let mut ids = HashSet::new();
        for i in 0..3u32 {
            for c in 0..10 {
                let cmd = g.next_command(NodeId(i), c);
                assert_eq!(cmd.id().origin(), NodeId(i));
                assert!(ids.insert(cmd.id()));
            }
        }
        assert_eq!(g.generated(), 30);
    }

    #[test]
    fn zero_percent_workload_never_touches_the_shared_pool() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::new(5).with_conflict_percent(0.0), 7);
        for _ in 0..500 {
            let cmd = g.next_command(NodeId(0), 0);
            assert!(!g.config().keyspace.is_shared(cmd.key().unwrap()));
        }
        assert_eq!(g.observed_conflict_ratio(), 0.0);
    }

    #[test]
    fn hundred_percent_workload_always_touches_the_shared_pool() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::new(5).with_conflict_percent(100.0), 7);
        for _ in 0..500 {
            let cmd = g.next_command(NodeId(1), 0);
            assert!(g.config().keyspace.is_shared(cmd.key().unwrap()));
        }
        assert!((g.observed_conflict_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn conflict_ratio_approximates_the_configured_percentage() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::new(5).with_conflict_percent(30.0), 99);
        for _ in 0..10_000 {
            g.next_command(NodeId(0), 0);
        }
        let ratio = g.observed_conflict_ratio();
        assert!((ratio - 0.3).abs() < 0.03, "observed {ratio}");
    }

    #[test]
    fn same_seed_reproduces_the_same_stream() {
        let config = WorkloadConfig::new(3).with_conflict_percent(50.0);
        let mut a = WorkloadGenerator::new(config, 5);
        let mut b = WorkloadGenerator::new(config, 5);
        for _ in 0..100 {
            assert_eq!(a.next_command(NodeId(1), 2), b.next_command(NodeId(1), 2));
        }
    }

    #[test]
    fn different_clients_use_different_private_keys() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::new(3), 11);
        let k1 = g.next_command(NodeId(0), 1).key().unwrap();
        let k2 = g.next_command(NodeId(0), 2).key().unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn conflict_percent_is_clamped() {
        let c = WorkloadConfig::new(3).with_conflict_percent(150.0);
        assert!((c.conflict_percent - 100.0).abs() < f64::EPSILON);
        let c = WorkloadConfig::new(3).with_conflict_percent(-3.0);
        assert_eq!(c.conflict_percent, 0.0);
    }
}
