//! Client drivers: closed-loop (latency experiments) and open-loop
//! (throughput experiments).

use std::collections::HashMap;

use consensus_core::session::{ClientHandle, ClusterHandle, Reply};
use consensus_types::{Command, CommandId, NodeId, SimTime};
use simnet::{Process, SimSession, Simulator};

use crate::generator::WorkloadGenerator;

/// Closed-loop clients, as used for the latency measurements in the paper:
/// a fixed number of clients is co-located with every replica; each client
/// submits one command through the session API, waits for its reply at the
/// local replica, then immediately submits the next one.
///
/// The driver runs against a [`SimSession`] so latency is true
/// submit→reply time as a session client would observe it, while the
/// discrete-event clock keeps every run reproducible.
#[derive(Debug)]
pub struct ClosedLoopDriver {
    generator: WorkloadGenerator,
    clients_per_node: usize,
    think_time: SimTime,
    /// Outstanding command → (submitting node, client index).
    outstanding: HashMap<CommandId, (NodeId, u64)>,
    /// Every command issued so far, by id (used by tests to recover payloads
    /// and conflict relations).
    issued_commands: HashMap<CommandId, Command>,
    /// Replies received at the submitting replicas, in completion order.
    replies: Vec<Reply>,
    /// One cached session client per replica (handles are cheap to clone
    /// but not free to build, and the driver submits per command).
    handles: Vec<ClientHandle>,
    issued: u64,
    completed: u64,
    max_commands: Option<u64>,
}

impl ClosedLoopDriver {
    /// Creates a driver with `clients_per_node` closed-loop clients on every
    /// replica (the paper uses 10 per site for latency, 500 for the recovery
    /// experiment).
    #[must_use]
    pub fn new(generator: WorkloadGenerator, clients_per_node: usize) -> Self {
        Self {
            generator,
            clients_per_node,
            think_time: 0,
            outstanding: HashMap::new(),
            issued_commands: HashMap::new(),
            replies: Vec::new(),
            handles: Vec::new(),
            issued: 0,
            completed: 0,
            max_commands: None,
        }
    }

    /// Adds a think time between the completion of a command and the
    /// submission of the next one (0 in the paper).
    #[must_use]
    pub fn with_think_time(mut self, think_time: SimTime) -> Self {
        self.think_time = think_time;
        self
    }

    /// Stops issuing new commands once `max` commands have been submitted in
    /// total (the run still completes the outstanding ones).
    #[must_use]
    pub fn with_max_commands(mut self, max: u64) -> Self {
        self.max_commands = Some(max);
        self
    }

    /// Number of commands submitted so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of commands whose reply arrived from their submitting replica.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// All replies received so far, in completion order.
    #[must_use]
    pub fn replies(&self) -> &[Reply] {
        &self.replies
    }

    /// Looks up the payload of a command this driver issued.
    #[must_use]
    pub fn command(&self, id: CommandId) -> Option<&Command> {
        self.issued_commands.get(&id)
    }

    /// All commands issued so far, keyed by id.
    #[must_use]
    pub fn issued_commands(&self) -> &HashMap<CommandId, Command> {
        &self.issued_commands
    }

    /// Consumes the driver and returns the collected replies.
    #[must_use]
    pub fn into_replies(self) -> Vec<Reply> {
        self.replies
    }

    fn can_issue(&self) -> bool {
        match self.max_commands {
            Some(max) => self.issued < max,
            None => true,
        }
    }

    fn submit(&mut self, node: NodeId, client: u64, delay_us: SimTime) {
        let cmd = self.generator.next_command(node, client);
        self.outstanding.insert(cmd.id(), (node, client));
        self.issued_commands.insert(cmd.id(), cmd.clone());
        self.issued += 1;
        self.handles[node.index()]
            .submit_command_after(cmd, delay_us)
            .expect("closed-loop submission fits the session's in-flight bound");
    }

    /// Submits the initial command of every client, staggered by a few
    /// microseconds so replicas do not process them in lockstep.
    pub fn start<P>(&mut self, session: &SimSession<P>)
    where
        P: Process + Send + 'static,
        P::Message: Send,
    {
        let nodes = session.nodes();
        self.handles = (0..nodes).map(|node| session.client(NodeId::from_index(node))).collect();
        for node in 0..nodes {
            for client in 0..self.clients_per_node {
                if !self.can_issue() {
                    return;
                }
                let delay = (node * 37 + client * 11) as SimTime;
                self.submit(NodeId::from_index(node), client as u64, delay);
            }
        }
    }

    /// Runs the simulation until `until` (simulated microseconds), feeding
    /// each client its next command as soon as the previous one's reply
    /// arrives.
    pub fn pump_until<P>(&mut self, session: &SimSession<P>, until: SimTime)
    where
        P: Process + Send + 'static,
        P::Message: Send,
    {
        while let Some(now) = session.step() {
            if now > until {
                break;
            }
            self.collect(session);
        }
        // Drain anything routed by the last step.
        self.collect(session);
    }

    fn collect<P>(&mut self, session: &SimSession<P>)
    where
        P: Process + Send + 'static,
        P::Message: Send,
    {
        for reply in session.take_replies() {
            if let Some((node, client)) = self.outstanding.remove(&reply.command) {
                self.completed += 1;
                if self.can_issue() && !session.is_crashed(node) {
                    let think = self.think_time;
                    self.submit(node, client, think);
                }
            }
            self.replies.push(reply);
        }
    }
}

/// Open-loop injection at a fixed aggregate rate, used for the throughput
/// experiments (Figure 9): commands are scheduled ahead of time regardless of
/// completions, so the system saturates when the offered load exceeds its
/// capacity.
#[derive(Debug)]
pub struct OpenLoopSchedule {
    generator: WorkloadGenerator,
    scheduled: u64,
}

impl OpenLoopSchedule {
    /// Creates an open-loop scheduler from a workload generator.
    #[must_use]
    pub fn new(generator: WorkloadGenerator) -> Self {
        Self { generator, scheduled: 0 }
    }

    /// Schedules commands on every node at `rate_per_node` commands per
    /// second for `duration` microseconds, spreading submissions evenly and
    /// offsetting nodes so they do not fire in lockstep. Returns the number
    /// of commands scheduled.
    pub fn schedule<P: Process>(
        &mut self,
        sim: &mut Simulator<P>,
        rate_per_node: f64,
        duration: SimTime,
    ) -> u64 {
        assert!(rate_per_node > 0.0, "rate must be positive");
        let nodes = sim.node_count();
        let interval = 1_000_000.0 / rate_per_node;
        let mut count = 0;
        for node in 0..nodes {
            let node_id = NodeId::from_index(node);
            let offset = interval / nodes as f64 * node as f64;
            let mut t = offset;
            let mut i = 0u64;
            while (t as SimTime) < duration {
                let cmd = self.generator.next_command(node_id, i % 64);
                sim.schedule_command(t as SimTime, node_id, cmd);
                count += 1;
                i += 1;
                t += interval;
            }
        }
        self.scheduled += count;
        count
    }

    /// Total number of commands scheduled so far.
    #[must_use]
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Gives back the underlying generator (e.g. to inspect the observed
    /// conflict ratio).
    #[must_use]
    pub fn into_generator(self) -> WorkloadGenerator {
        self.generator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;
    use caesar::{CaesarConfig, CaesarReplica};
    use simnet::{LatencyMatrix, SimConfig};

    fn sim() -> Simulator<CaesarReplica> {
        let config = CaesarConfig::new(5);
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            CaesarReplica::new(id, config.clone())
        })
    }

    fn session() -> SimSession<CaesarReplica> {
        SimSession::new(sim())
    }

    #[test]
    fn closed_loop_clients_keep_one_command_outstanding() {
        let generator =
            WorkloadGenerator::new(WorkloadConfig::new(5).with_conflict_percent(10.0), 3);
        let mut driver = ClosedLoopDriver::new(generator, 2).with_max_commands(40);
        let session = session();
        driver.start(&session);
        assert_eq!(driver.issued(), 10);
        driver.pump_until(&session, 20_000_000);
        assert_eq!(driver.issued(), 40);
        assert_eq!(driver.completed(), 40);
        // Every reply came from the replica the command was submitted to.
        for reply in driver.replies() {
            assert_eq!(reply.command.origin(), reply.node);
        }
        // Every command executed on every replica.
        assert_eq!(session.decisions(NodeId(0)).len(), 40);
    }

    #[test]
    fn closed_loop_latencies_are_positive_and_bounded_by_wan_rtt() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut driver = ClosedLoopDriver::new(generator, 1).with_max_commands(10);
        let session = session();
        driver.start(&session);
        driver.pump_until(&session, 30_000_000);
        assert_eq!(driver.completed(), 10);
        for reply in driver.replies() {
            assert!(reply.decision.latency() > 0);
            assert!(
                reply.decision.latency() < 2_000_000,
                "latency {} too large",
                reply.decision.latency()
            );
        }
    }

    #[test]
    fn open_loop_schedules_the_requested_rate() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut schedule = OpenLoopSchedule::new(generator);
        let mut sim = sim();
        let count = schedule.schedule(&mut sim, 100.0, 1_000_000);
        assert_eq!(count, 500, "100 cmd/s per node for 1 s on 5 nodes");
        assert_eq!(schedule.scheduled(), 500);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn open_loop_rejects_zero_rate() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut schedule = OpenLoopSchedule::new(generator);
        let mut sim = sim();
        schedule.schedule(&mut sim, 0.0, 1_000_000);
    }
}
