//! Client drivers: closed-loop (latency experiments) and open-loop
//! (throughput experiments).

use std::collections::HashMap;

use consensus_types::{Command, CommandId, Decision, NodeId, SimTime};
use simnet::{Process, Simulator};

use crate::generator::WorkloadGenerator;

/// Closed-loop clients, as used for the latency measurements in the paper:
/// a fixed number of clients is co-located with every replica; each client
/// submits one command, waits for it to execute at its local replica, then
/// immediately submits the next one.
#[derive(Debug)]
pub struct ClosedLoopDriver {
    generator: WorkloadGenerator,
    clients_per_node: usize,
    think_time: SimTime,
    /// Outstanding command → (origin node, client index).
    outstanding: HashMap<CommandId, (NodeId, u64)>,
    /// Every command issued so far, by id (used by tests to recover payloads
    /// and conflict relations).
    issued_commands: HashMap<CommandId, Command>,
    /// Decisions drained from the simulator, tagged with the replica that
    /// executed them.
    collected: Vec<(NodeId, Decision)>,
    issued: u64,
    completed: u64,
    max_commands: Option<u64>,
}

impl ClosedLoopDriver {
    /// Creates a driver with `clients_per_node` closed-loop clients on every
    /// replica (the paper uses 10 per site for latency, 500 for the recovery
    /// experiment).
    #[must_use]
    pub fn new(generator: WorkloadGenerator, clients_per_node: usize) -> Self {
        Self {
            generator,
            clients_per_node,
            think_time: 0,
            outstanding: HashMap::new(),
            issued_commands: HashMap::new(),
            collected: Vec::new(),
            issued: 0,
            completed: 0,
            max_commands: None,
        }
    }

    /// Adds a think time between the completion of a command and the
    /// submission of the next one (0 in the paper).
    #[must_use]
    pub fn with_think_time(mut self, think_time: SimTime) -> Self {
        self.think_time = think_time;
        self
    }

    /// Stops issuing new commands once `max` commands have been submitted in
    /// total (the run still completes the outstanding ones).
    #[must_use]
    pub fn with_max_commands(mut self, max: u64) -> Self {
        self.max_commands = Some(max);
        self
    }

    /// Number of commands submitted so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of commands whose execution completed at their origin replica.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// All decisions drained from the simulator so far, tagged by replica.
    #[must_use]
    pub fn decisions(&self) -> &[(NodeId, Decision)] {
        &self.collected
    }

    /// Looks up the payload of a command this driver issued.
    #[must_use]
    pub fn command(&self, id: CommandId) -> Option<&Command> {
        self.issued_commands.get(&id)
    }

    /// All commands issued so far, keyed by id.
    #[must_use]
    pub fn issued_commands(&self) -> &HashMap<CommandId, Command> {
        &self.issued_commands
    }

    /// Consumes the driver and returns the collected decisions.
    #[must_use]
    pub fn into_decisions(self) -> Vec<(NodeId, Decision)> {
        self.collected
    }

    fn can_issue(&self) -> bool {
        match self.max_commands {
            Some(max) => self.issued < max,
            None => true,
        }
    }

    /// Submits the initial command of every client, staggered by a few
    /// microseconds so replicas do not process them in lockstep.
    pub fn start<P: Process>(&mut self, sim: &mut Simulator<P>) {
        let nodes = sim.node_count();
        for node in 0..nodes {
            for client in 0..self.clients_per_node {
                if !self.can_issue() {
                    return;
                }
                let node_id = NodeId::from_index(node);
                let cmd = self.generator.next_command(node_id, client as u64);
                self.outstanding.insert(cmd.id(), (node_id, client as u64));
                self.issued_commands.insert(cmd.id(), cmd.clone());
                self.issued += 1;
                let at = (node * 37 + client * 11) as SimTime;
                sim.schedule_command(at, node_id, cmd);
            }
        }
    }

    /// Runs the simulation until `until` (simulated microseconds), feeding
    /// each client its next command as soon as the previous one completes.
    pub fn pump_until<P: Process>(&mut self, sim: &mut Simulator<P>, until: SimTime) {
        while let Some(now) = sim.step() {
            if now > until {
                break;
            }
            self.collect(sim, now);
        }
        // Drain anything recorded by the last step.
        let now = sim.now();
        self.collect(sim, now);
    }

    fn collect<P: Process>(&mut self, sim: &mut Simulator<P>, now: SimTime) {
        for node in 0..sim.node_count() {
            let node_id = NodeId::from_index(node);
            let decisions = sim.take_decisions(node_id);
            for d in decisions {
                if let Some((origin, client)) = self.outstanding.get(&d.command).copied() {
                    if origin == node_id {
                        self.outstanding.remove(&d.command);
                        self.completed += 1;
                        if self.can_issue() && !sim.is_crashed(node_id) {
                            let next = self.generator.next_command(node_id, client);
                            self.outstanding.insert(next.id(), (node_id, client));
                            self.issued_commands.insert(next.id(), next.clone());
                            self.issued += 1;
                            sim.schedule_command(now + self.think_time, node_id, next);
                        }
                    }
                }
                self.collected.push((node_id, d));
            }
        }
    }
}

/// Open-loop injection at a fixed aggregate rate, used for the throughput
/// experiments (Figure 9): commands are scheduled ahead of time regardless of
/// completions, so the system saturates when the offered load exceeds its
/// capacity.
#[derive(Debug)]
pub struct OpenLoopSchedule {
    generator: WorkloadGenerator,
    scheduled: u64,
}

impl OpenLoopSchedule {
    /// Creates an open-loop scheduler from a workload generator.
    #[must_use]
    pub fn new(generator: WorkloadGenerator) -> Self {
        Self { generator, scheduled: 0 }
    }

    /// Schedules commands on every node at `rate_per_node` commands per
    /// second for `duration` microseconds, spreading submissions evenly and
    /// offsetting nodes so they do not fire in lockstep. Returns the number
    /// of commands scheduled.
    pub fn schedule<P: Process>(
        &mut self,
        sim: &mut Simulator<P>,
        rate_per_node: f64,
        duration: SimTime,
    ) -> u64 {
        assert!(rate_per_node > 0.0, "rate must be positive");
        let nodes = sim.node_count();
        let interval = 1_000_000.0 / rate_per_node;
        let mut count = 0;
        for node in 0..nodes {
            let node_id = NodeId::from_index(node);
            let offset = interval / nodes as f64 * node as f64;
            let mut t = offset;
            let mut i = 0u64;
            while (t as SimTime) < duration {
                let cmd = self.generator.next_command(node_id, i % 64);
                sim.schedule_command(t as SimTime, node_id, cmd);
                count += 1;
                i += 1;
                t += interval;
            }
        }
        self.scheduled += count;
        count
    }

    /// Total number of commands scheduled so far.
    #[must_use]
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Gives back the underlying generator (e.g. to inspect the observed
    /// conflict ratio).
    #[must_use]
    pub fn into_generator(self) -> WorkloadGenerator {
        self.generator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;
    use caesar::{CaesarConfig, CaesarReplica};
    use simnet::{LatencyMatrix, SimConfig};

    fn sim() -> Simulator<CaesarReplica> {
        let config = CaesarConfig::new(5);
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            CaesarReplica::new(id, config.clone())
        })
    }

    #[test]
    fn closed_loop_clients_keep_one_command_outstanding() {
        let generator =
            WorkloadGenerator::new(WorkloadConfig::new(5).with_conflict_percent(10.0), 3);
        let mut driver = ClosedLoopDriver::new(generator, 2).with_max_commands(40);
        let mut sim = sim();
        driver.start(&mut sim);
        assert_eq!(driver.issued(), 10);
        driver.pump_until(&mut sim, 20_000_000);
        assert_eq!(driver.issued(), 40);
        assert_eq!(driver.completed(), 40);
        // Every command executed on every replica.
        let per_node0 = driver.decisions().iter().filter(|(n, _)| *n == NodeId(0)).count();
        assert_eq!(per_node0, 40);
    }

    #[test]
    fn closed_loop_latencies_are_positive_and_bounded_by_wan_rtt() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut driver = ClosedLoopDriver::new(generator, 1).with_max_commands(10);
        let mut sim = sim();
        driver.start(&mut sim);
        driver.pump_until(&mut sim, 30_000_000);
        for (node, d) in driver.decisions() {
            if d.command.origin() == *node {
                assert!(d.latency() > 0);
                assert!(d.latency() < 2_000_000, "latency {} too large", d.latency());
            }
        }
    }

    #[test]
    fn open_loop_schedules_the_requested_rate() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut schedule = OpenLoopSchedule::new(generator);
        let mut sim = sim();
        let count = schedule.schedule(&mut sim, 100.0, 1_000_000);
        assert_eq!(count, 500, "100 cmd/s per node for 1 s on 5 nodes");
        assert_eq!(schedule.scheduled(), 500);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn open_loop_rejects_zero_rate() {
        let generator = WorkloadGenerator::new(WorkloadConfig::new(5), 3);
        let mut schedule = OpenLoopSchedule::new(generator);
        let mut sim = sim();
        schedule.schedule(&mut sim, 0.0, 1_000_000);
    }
}
