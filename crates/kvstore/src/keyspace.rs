//! The key layout used by the paper's benchmark.

/// The paper's benchmark key space: a shared pool of hot keys (accesses to it
/// conflict across clients) and unbounded private keys per client (accesses
/// never conflict).
///
/// *"When the clients issue conflicting commands, the key is picked from a
/// shared pool of 100 keys with a certain probability depending on the
/// experiment."* — Section VI.
///
/// # Example
///
/// ```
/// use kvstore::KeySpace;
///
/// let keys = KeySpace::paper_default();
/// assert_eq!(keys.shared_pool_size(), 100);
/// assert!(keys.is_shared(keys.shared_key(5)));
/// assert!(!keys.is_shared(keys.private_key(3, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpace {
    shared_pool_size: u64,
}

impl KeySpace {
    /// Offset at which private keys start; shared keys live in
    /// `[0, shared_pool_size)`.
    const PRIVATE_BASE: u64 = 1 << 32;

    /// The paper's configuration: 100 shared keys.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { shared_pool_size: 100 }
    }

    /// A key space with a custom shared-pool size.
    ///
    /// # Panics
    ///
    /// Panics if `shared_pool_size` is zero.
    #[must_use]
    pub fn new(shared_pool_size: u64) -> Self {
        assert!(shared_pool_size > 0, "the shared pool needs at least one key");
        Self { shared_pool_size }
    }

    /// Number of keys in the shared (conflicting) pool.
    #[must_use]
    pub fn shared_pool_size(&self) -> u64 {
        self.shared_pool_size
    }

    /// The `index`-th shared key (wraps around the pool size).
    #[must_use]
    pub fn shared_key(&self, index: u64) -> u64 {
        index % self.shared_pool_size
    }

    /// A private key owned by `client` (no other client ever touches it).
    #[must_use]
    pub fn private_key(&self, client: u64, index: u64) -> u64 {
        Self::PRIVATE_BASE + client * (1 << 20) + (index % (1 << 20))
    }

    /// Whether `key` belongs to the shared pool.
    #[must_use]
    pub fn is_shared(&self, key: u64) -> bool {
        key < self.shared_pool_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_keys_stay_in_the_pool() {
        let ks = KeySpace::new(10);
        for i in 0..100 {
            assert!(ks.is_shared(ks.shared_key(i)));
            assert!(ks.shared_key(i) < 10);
        }
    }

    #[test]
    fn private_keys_never_collide_across_clients() {
        let ks = KeySpace::paper_default();
        let a: Vec<u64> = (0..50).map(|i| ks.private_key(1, i)).collect();
        let b: Vec<u64> = (0..50).map(|i| ks.private_key(2, i)).collect();
        for k in &a {
            assert!(!ks.is_shared(*k));
            assert!(!b.contains(k));
        }
    }

    #[test]
    fn paper_default_has_100_shared_keys() {
        assert_eq!(KeySpace::paper_default().shared_pool_size(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_sized_pool_is_rejected() {
        let _ = KeySpace::new(0);
    }
}
