//! The deterministic key-value state machine: the reference
//! [`StateMachine`] implementation.

use std::collections::HashMap;

use consensus_core::state_machine::{RestoreError, StateMachine};
use consensus_types::{Command, Operation};
use serde::{Deserialize, Serialize};

/// A deterministic, fully replicated key-value store.
///
/// Replicas apply decided commands in their execution order; two replicas
/// that applied compatible command sequences end up with identical stores,
/// which is what the integration tests assert. This is the reference
/// implementation of [`consensus_core::StateMachine`] — the one every
/// runtime constructs unless a custom factory is plugged in.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStore {
    data: HashMap<u64, u64>,
    /// Number of write commands applied, used as a cheap state-machine
    /// fingerprint alongside the data itself.
    applied_writes: u64,
    /// Total number of commands applied (the snapshot watermark).
    applied: u64,
}

impl KvStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The default [`consensus_core::state_machine::StateMachineFactory`]
    /// every runtime config starts with: one fresh `KvStore` per replica.
    /// Defined once here so the runtimes cannot drift onto different
    /// defaults.
    #[must_use]
    pub fn factory() -> consensus_core::state_machine::StateMachineFactory {
        std::sync::Arc::new(|_| Box::new(KvStore::new()))
    }

    /// Applies a decided command. Returns the value read for `Get`
    /// operations, the previous value for `Put` operations, and `None` for
    /// no-ops or reads of missing keys.
    pub fn apply(&mut self, cmd: &Command) -> Option<u64> {
        self.applied += 1;
        match (cmd.operation(), cmd.key()) {
            (Operation::Put, Some(key)) => {
                self.applied_writes += 1;
                self.data.insert(key, cmd.value())
            }
            (Operation::Get, Some(key)) => self.data.get(&key).copied(),
            _ => None,
        }
    }

    /// Reads the current value of `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.data.get(&key).copied()
    }

    /// Number of distinct keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of write commands applied so far.
    #[must_use]
    pub fn applied_writes(&self) -> u64 {
        self.applied_writes
    }

    /// Total number of commands applied so far (writes, reads and no-ops).
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// A deterministic fingerprint of the store contents, independent of
    /// insertion order. Two replicas with equal fingerprints hold the same
    /// data.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Order-independent combination: XOR of per-entry mixes.
        let mut acc = 0u64;
        for (&k, &v) in &self.data {
            acc ^= mix(k, v);
        }
        acc
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, cmd: &Command) -> Option<u64> {
        KvStore::apply(self, cmd)
    }

    fn snapshot(&self) -> Vec<u8> {
        bincode::serialize(self).expect("kv store serializes")
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        *self = bincode::deserialize(snapshot).map_err(RestoreError::new)?;
        Ok(())
    }

    fn applied_through(&self) -> u64 {
        self.applied
    }

    fn fingerprint(&self) -> u64 {
        KvStore::fingerprint(self)
    }

    fn kind(&self) -> &'static str {
        "kv-store"
    }

    // The keyspace partitions cleanly by conflict key and the fingerprint is
    // an XOR over entries (empty = 0), so disjoint shards XOR-combine to the
    // whole store's fingerprint — exactly what `consensus_core::exec`
    // requires for sharded parallel execution.
    fn partitionable(&self) -> bool {
        true
    }

    fn split_snapshot(&self, shards: usize) -> Option<Vec<Vec<u8>>> {
        let mut parts = vec![KvStore::new(); shards.max(1)];
        for (&k, &v) in &self.data {
            parts[consensus_core::exec::shard_of_key(Some(k), shards.max(1))].data.insert(k, v);
        }
        // The apply counters are whole-store totals; park them on shard 0 so
        // summing over shards reproduces them.
        parts[0].applied_writes = self.applied_writes;
        parts[0].applied = self.applied;
        Some(parts.iter().map(StateMachine::snapshot).collect())
    }

    fn merge_snapshot(&mut self, part: &[u8]) -> Result<(), RestoreError> {
        let part: KvStore = bincode::deserialize(part).map_err(RestoreError::new)?;
        self.data.extend(part.data);
        self.applied_writes += part.applied_writes;
        self.applied += part.applied;
        Ok(())
    }
}

/// Applies a sequence of commands to a fresh store and returns it.
#[must_use]
pub fn apply_all<'a>(commands: impl IntoIterator<Item = &'a Command>) -> KvStore {
    let mut store = KvStore::new();
    for cmd in commands {
        store.apply(cmd);
    }
    store
}

fn mix(k: u64, v: u64) -> u64 {
    // splitmix64-style mixing of the (key, value) pair.
    let mut x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ v.wrapping_add(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::{CommandId, NodeId};

    fn put(seq: u64, key: u64, value: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), key, value)
    }

    #[test]
    fn put_stores_and_returns_previous_value() {
        let mut s = KvStore::new();
        assert_eq!(s.apply(&put(1, 7, 10)), None);
        assert_eq!(s.apply(&put(2, 7, 20)), Some(10));
        assert_eq!(s.get(7), Some(20));
        assert_eq!(s.applied_writes(), 2);
    }

    #[test]
    fn get_reads_without_modifying() {
        let mut s = KvStore::new();
        s.apply(&put(1, 7, 10));
        let get =
            Command::new(CommandId::new(NodeId(1), 1), consensus_types::Operation::Get, Some(7), 0);
        assert_eq!(s.apply(&get), Some(10));
        assert_eq!(s.applied_writes(), 1);
    }

    #[test]
    fn noop_changes_nothing() {
        let mut s = KvStore::new();
        let noop = Command::noop(CommandId::new(NodeId(0), 1));
        assert_eq!(s.apply(&noop), None);
        assert!(s.is_empty());
    }

    #[test]
    fn fingerprint_is_order_independent_for_commuting_writes() {
        let a = put(1, 1, 10);
        let b = put(2, 2, 20);
        let s1 = apply_all([&a, &b]);
        let s2 = apply_all([&b, &a]);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(s1, s2);
    }

    #[test]
    fn fingerprint_differs_when_conflicting_writes_are_reordered() {
        let a = put(1, 7, 10);
        let b = put(2, 7, 20);
        let s1 = apply_all([&a, &b]);
        let s2 = apply_all([&b, &a]);
        assert_ne!(s1.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn len_counts_distinct_keys() {
        let s = apply_all([&put(1, 1, 1), &put(2, 2, 2), &put(3, 1, 3)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn snapshot_restore_round_trips_data_and_watermark() {
        let mut original = apply_all([&put(1, 1, 10), &put(2, 2, 20)]);
        let get =
            Command::new(CommandId::new(NodeId(1), 1), consensus_types::Operation::Get, Some(1), 0);
        original.apply(&get);
        assert_eq!(StateMachine::applied_through(&original), 3);

        let snapshot = StateMachine::snapshot(&original);
        let mut restored = KvStore::new();
        StateMachine::restore(&mut restored, &snapshot).expect("snapshot restores");
        assert_eq!(restored, original);
        assert_eq!(StateMachine::fingerprint(&restored), StateMachine::fingerprint(&original));
        assert_eq!(StateMachine::applied_through(&restored), 3);
        // A restored store keeps applying where the original left off.
        assert_eq!(restored.apply(&put(3, 1, 30)), Some(10));
        assert_eq!(restored.applied(), 4);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut store = KvStore::new();
        assert!(StateMachine::restore(&mut store, &[0xAB; 2]).is_err());
    }

    #[test]
    fn split_then_merge_reassembles_the_store() {
        let mut original = KvStore::new();
        for i in 0..100 {
            original.apply(&put(i + 1, i, i * 3));
        }
        let get =
            Command::new(CommandId::new(NodeId(1), 1), consensus_types::Operation::Get, Some(7), 0);
        original.apply(&get);

        for shards in [1usize, 2, 4, 7] {
            let parts = original.split_snapshot(shards).expect("kv store partitions");
            assert_eq!(parts.len(), shards);
            let mut merged = KvStore::new();
            for part in &parts {
                merged.merge_snapshot(part).expect("shard merges");
            }
            assert_eq!(merged, original, "{shards} shards");
        }
    }

    #[test]
    fn shard_fingerprints_xor_to_the_whole_store() {
        let mut original = KvStore::new();
        for i in 0..64 {
            original.apply(&put(i + 1, i * 11, i));
        }
        let parts = original.split_snapshot(4).expect("kv store partitions");
        let combined = parts.iter().fold(0u64, |acc, part| {
            let mut shard = KvStore::new();
            StateMachine::restore(&mut shard, part).expect("shard restores");
            acc ^ StateMachine::fingerprint(&shard)
        });
        assert_eq!(combined, StateMachine::fingerprint(&original));
    }

    #[test]
    fn sharded_executor_matches_a_serial_store() {
        use consensus_core::exec::Executor;
        use consensus_types::BATCH_LANE;

        let registry = telemetry::Registry::new();
        let sharded = Executor::new(KvStore::factory(), NodeId(0), 4, &registry);
        assert_eq!(sharded.shards(), 4);
        let serial = Executor::new(KvStore::factory(), NodeId(1), 1, &registry);

        // Conflict-heavy mixed rounds: batches and plain commands over a
        // narrow keyspace, so same-key order actually matters.
        let mut seq = 0u64;
        let mut cmd = |key: u64, value: u64| {
            seq += 1;
            put(seq, key, value)
        };
        let rounds: Vec<Vec<Command>> = (0..20)
            .map(|r| {
                let batch = Command::batch(
                    CommandId::new(NodeId(0), BATCH_LANE | (r + 1)),
                    (0..8).map(|i| cmd(i % 5, r * 100 + i)).collect(),
                );
                vec![batch, cmd(r % 5, r), cmd(13, r)]
            })
            .collect();
        for round in &rounds {
            let a = sharded.apply_round(round);
            let b = serial.apply_round(round);
            assert_eq!(a, b, "per-leaf outputs diverge");
        }
        assert_eq!(sharded.fingerprint(), serial.fingerprint());
        assert_eq!(sharded.applied_through(), serial.applied_through());

        // Snapshots cross the shard boundary in canonical form.
        let image = sharded.snapshot();
        let restored = Executor::new(KvStore::factory(), NodeId(2), 4, &registry);
        restored.restore(&image).expect("canonical snapshot restores sharded");
        assert_eq!(restored.fingerprint(), serial.fingerprint());
        assert_eq!(restored.applied_through(), serial.applied_through());
        assert!(registry.snapshot().counter("exec.rounds") >= 40);
    }
}
