//! The replicated key-value state machine used by the paper's benchmark.
//!
//! The evaluation in Section VI issues client commands that update keys of a
//! fully replicated key-value store; two commands conflict when they access
//! the same key. This crate provides:
//!
//! * [`KvStore`] — the **reference [`consensus_core::StateMachine`]
//!   implementation**: the deterministic store replicas apply decided
//!   commands to unless a custom state-machine factory is plugged into the
//!   runtime (see `consensus_core::state_machine`),
//! * [`KeySpace`] — the paper's key layout: a shared pool of 100 "hot" keys
//!   (conflicting accesses) plus per-client private keys (non-conflicting
//!   accesses),
//! * [`apply_all`] helpers to run a sequence of decided commands and compare
//!   replica states.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use kvstore::KvStore;
//!
//! let mut store = KvStore::new();
//! store.apply(&Command::put(CommandId::new(NodeId(0), 1), 7, 42));
//! assert_eq!(store.get(7), Some(42));
//! assert_eq!(store.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod keyspace;
mod store;

pub use keyspace::KeySpace;
pub use store::{apply_all, KvStore};
