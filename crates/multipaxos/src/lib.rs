//! Multi-Paxos baseline: a single stable leader orders all commands.
//!
//! Multi-Paxos is the single-leader reference point in the CAESAR evaluation
//! (Figure 7 and Figure 9). A designated leader assigns every command a slot
//! in a totally ordered log, replicates it to a classic quorum with one
//! Accept round, and broadcasts the commit; replicas execute the log in slot
//! order. Clients co-located with other replicas forward their commands to
//! the leader, paying one extra WAN hop — which is exactly why the paper
//! deploys it twice, with the leader in Ireland (close to a quorum) and in
//! Mumbai (far from every quorum).
//!
//! # Quorums, conflicts and recovery
//!
//! * **Quorums.** Every slot commits through one Accept round over a classic
//!   quorum of `⌊N/2⌋+1` replicas (3 of 5); there is no fast path — the
//!   single leader already serializes everything.
//! * **Conflict condition.** None. The leader assigns every command a slot
//!   in one total order, so commuting commands pay the same latency as
//!   conflicting ones.
//! * **Recovery semantics.** The execution gate is a single slot cursor
//!   (`next_execute` over the committed log).
//!   [`simnet::Process::execution_cursor`] reports it as
//!   [`consensus_types::ExecutionCursor::Log`] — the next-execute slot, a
//!   `next_free` lower bound on slot assignment (so a restarted *leader*
//!   can never reuse a slot its previous incarnation handed out), and the
//!   committed-but-unexecuted backlog. `on_state_transfer` fast-forwards
//!   `next_execute` past everything the snapshot covers, installs the
//!   backlog, and drains whatever became executable; without it a restarted
//!   replica would wait forever at the slot gap between its fresh log and
//!   the cluster's. Leader *election* is out of scope (the evaluation keeps
//!   the leader stable), so a crashed leader halts new commits until it
//!   returns — but its restart recovers through the same cursor transfer.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! // Leader in Ireland (node 3), as in the paper's Multi-Paxos-IR setting.
//! let config = MultiPaxosConfig::new(5, NodeId(3));
//! let mut sim = Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), |id| {
//!     MultiPaxosReplica::new(id, config.clone())
//! });
//! sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use consensus_types::{
    Command, CommandId, Decision, DecisionPath, ExecutionCursor, LatencyBreakdown, NodeId,
    QuorumSpec, SimTime, StateTransfer, Timestamp,
};
use serde::{Deserialize, Serialize};
use simnet::{Context, Process};
use telemetry::{Counter, Registry, TracePhase};

/// Configuration of a Multi-Paxos replica.
#[derive(Debug, Clone)]
pub struct MultiPaxosConfig {
    /// Classic quorum specification.
    pub quorums: QuorumSpec,
    /// The designated leader (stable; the evaluation does not exercise leader
    /// election).
    pub leader: NodeId,
    /// Base CPU cost per protocol message (microseconds).
    pub message_cost_us: SimTime,
}

impl MultiPaxosConfig {
    /// Configuration for `nodes` replicas with the given stable leader.
    #[must_use]
    pub fn new(nodes: usize, leader: NodeId) -> Self {
        Self { quorums: QuorumSpec::new(nodes), leader, message_cost_us: 10 }
    }

    /// Sets the per-message CPU cost.
    #[must_use]
    pub fn with_message_cost_us(mut self, cost: SimTime) -> Self {
        self.message_cost_us = cost;
        self
    }
}

/// Messages of the Multi-Paxos protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MultiPaxosMessage {
    /// Non-leader replica → leader: order this client command for me.
    Forward {
        /// The command to order.
        cmd: Command,
    },
    /// Leader → replicas: accept `cmd` at `slot`.
    Accept {
        /// Log position.
        slot: u64,
        /// The command.
        cmd: Command,
    },
    /// Replica → leader: slot accepted.
    AcceptReply {
        /// Log position being acknowledged.
        slot: u64,
    },
    /// Leader → replicas: the slot is chosen; execute in log order.
    Commit {
        /// Log position.
        slot: u64,
        /// The command.
        cmd: Command,
    },
}

/// A point-in-time copy of the counters kept by a Multi-Paxos replica.
///
/// The live values are registry metrics (`multipaxos.forwarded`,
/// `multipaxos.committed_slots`, `commands.executed`), reachable through
/// [`simnet::Process::telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiPaxosMetrics {
    /// Commands this replica forwarded to the leader.
    pub forwarded: u64,
    /// Slots this replica (as leader) committed.
    pub committed_slots: u64,
    /// Commands executed locally.
    pub commands_executed: u64,
}

/// The registry handles behind [`MultiPaxosMetrics`].
#[derive(Debug)]
struct MultiPaxosCounters {
    forwarded: Counter,
    committed_slots: Counter,
    commands_executed: Counter,
}

impl MultiPaxosCounters {
    fn register(registry: &Registry) -> Self {
        Self {
            forwarded: registry.counter("multipaxos.forwarded"),
            committed_slots: registry.counter("multipaxos.committed_slots"),
            commands_executed: registry.counter("commands.executed"),
        }
    }

    fn snapshot(&self) -> MultiPaxosMetrics {
        MultiPaxosMetrics {
            forwarded: self.forwarded.get(),
            committed_slots: self.committed_slots.get(),
            commands_executed: self.commands_executed.get(),
        }
    }
}

/// A Multi-Paxos replica implementing [`simnet::Process`].
#[derive(Debug)]
pub struct MultiPaxosReplica {
    id: NodeId,
    config: MultiPaxosConfig,
    /// Leader state: next slot to assign and acks per in-flight slot.
    next_slot: u64,
    acks: HashMap<u64, usize>,
    in_flight: HashMap<u64, Command>,
    /// Log of committed commands, keyed by slot.
    log: BTreeMap<u64, Command>,
    /// Next slot to execute.
    next_execute: u64,
    /// Commands proposed locally (origin replica) → proposal time, so the
    /// co-located client's latency can be reported when the command executes.
    pending_local: HashMap<CommandId, SimTime>,
    registry: Arc<Registry>,
    metrics: MultiPaxosCounters,
}

impl MultiPaxosReplica {
    /// Creates a replica.
    #[must_use]
    pub fn new(id: NodeId, config: MultiPaxosConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = MultiPaxosCounters::register(&registry);
        Self {
            id,
            config,
            next_slot: 0,
            acks: HashMap::new(),
            in_flight: HashMap::new(),
            log: BTreeMap::new(),
            next_execute: 0,
            pending_local: HashMap::new(),
            registry,
            metrics,
        }
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this replica is the designated leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.id == self.config.leader
    }

    /// A snapshot of the protocol counters.
    #[must_use]
    pub fn metrics(&self) -> MultiPaxosMetrics {
        self.metrics.snapshot()
    }

    /// Number of commands executed locally.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.next_execute as usize
    }

    fn lead(&mut self, cmd: Command, ctx: &mut Context<'_, MultiPaxosMessage>) {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.acks.insert(slot, 1); // the leader accepts its own slot
        self.in_flight.insert(slot, cmd.clone());
        ctx.trace(TracePhase::Propose, cmd.id());
        ctx.broadcast_others(MultiPaxosMessage::Accept { slot, cmd });
    }

    fn execute_ready(&mut self, ctx: &mut Context<'_, MultiPaxosMessage>) {
        let now = ctx.now();
        while let Some(cmd) = self.log.get(&self.next_execute).cloned() {
            self.next_execute += 1;
            self.metrics.commands_executed.inc();
            let proposed_at = self.pending_local.remove(&cmd.id()).unwrap_or(now);
            let decision = Decision {
                command: cmd.id(),
                timestamp: Timestamp::ZERO,
                path: DecisionPath::Ordered,
                proposed_at,
                executed_at: now,
                breakdown: LatencyBreakdown::default(),
            };
            ctx.deliver(cmd, decision);
        }
    }
}

impl Process for MultiPaxosReplica {
    type Message = MultiPaxosMessage;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, MultiPaxosMessage>) {
        self.pending_local.insert(cmd.id(), ctx.now());
        if self.is_leader() {
            self.lead(cmd, ctx);
        } else {
            self.metrics.forwarded.inc();
            ctx.send(self.config.leader, MultiPaxosMessage::Forward { cmd });
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: MultiPaxosMessage,
        ctx: &mut Context<'_, MultiPaxosMessage>,
    ) {
        match msg {
            MultiPaxosMessage::Forward { cmd } => {
                if self.is_leader() {
                    self.lead(cmd, ctx);
                }
            }
            MultiPaxosMessage::Accept { slot, cmd } => {
                // Acceptors store the command and acknowledge; they learn the
                // decision from the Commit broadcast.
                let _ = cmd;
                ctx.send(from, MultiPaxosMessage::AcceptReply { slot });
            }
            MultiPaxosMessage::AcceptReply { slot } => {
                if !self.is_leader() {
                    return;
                }
                let Some(count) = self.acks.get_mut(&slot) else { return };
                *count += 1;
                if *count == self.config.quorums.classic() {
                    let Some(cmd) = self.in_flight.remove(&slot) else { return };
                    self.acks.remove(&slot);
                    self.metrics.committed_slots.inc();
                    ctx.trace(TracePhase::QuorumReached, cmd.id());
                    ctx.trace(TracePhase::Commit, cmd.id());
                    ctx.broadcast_others(MultiPaxosMessage::Commit { slot, cmd: cmd.clone() });
                    self.log.insert(slot, cmd);
                    self.execute_ready(ctx);
                }
            }
            MultiPaxosMessage::Commit { slot, cmd } => {
                if !self.log.contains_key(&slot) {
                    ctx.trace(TracePhase::Commit, cmd.id());
                }
                self.log.insert(slot, cmd);
                self.execute_ready(ctx);
            }
        }
    }

    fn execution_cursor(&self) -> ExecutionCursor {
        // `next_free` must clear every slot this replica has seen used —
        // assigned by it as leader, committed in its log, or executed — so
        // a restarted leader resumes assignment past its previous life.
        let next_free = self
            .next_slot
            .max(self.next_execute)
            .max(self.log.keys().next_back().map_or(0, |slot| slot + 1));
        ExecutionCursor::Log {
            next_execute: self.next_execute,
            next_free,
            backlog: self
                .log
                .range(self.next_execute..)
                .map(|(slot, cmd)| (*slot, cmd.clone()))
                .collect(),
        }
    }

    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, MultiPaxosMessage>,
    ) {
        let ExecutionCursor::Log { next_execute, next_free, backlog } = &transfer.cursor else {
            return;
        };
        // Learn the donor's committed-but-unexecuted suffix first, then jump
        // the execution cursor past everything the snapshot already covers.
        for (slot, cmd) in backlog {
            self.log.entry(*slot).or_insert_with(|| cmd.clone());
        }
        self.next_execute = self.next_execute.max(*next_execute);
        self.next_slot = self.next_slot.max(*next_free);
        // Slots below the cursor are covered by the restored snapshot; keep
        // the log bounded by dropping them.
        self.log = self.log.split_off(&self.next_execute);
        self.execute_ready(ctx);
    }

    fn processing_cost(&self, msg: &MultiPaxosMessage) -> SimTime {
        let base = self.config.message_cost_us;
        match msg {
            MultiPaxosMessage::Forward { .. } | MultiPaxosMessage::Accept { .. } => base,
            MultiPaxosMessage::AcceptReply { .. } => base / 2 + 1,
            MultiPaxosMessage::Commit { .. } => base / 2 + 1,
        }
    }

    fn telemetry(&self) -> Option<Arc<Registry>> {
        Some(self.registry.clone())
    }

    fn client_processing_cost(&self, _cmd: &Command) -> SimTime {
        self.config.message_cost_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LatencyMatrix, SimConfig, Simulator};

    fn sim(leader: NodeId) -> Simulator<MultiPaxosReplica> {
        let config = MultiPaxosConfig::new(5, leader);
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            MultiPaxosReplica::new(id, config.clone())
        })
    }

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn leader_local_command_commits_in_two_message_delays() {
        let mut s = sim(NodeId(3));
        s.schedule_command(0, NodeId(3), put(3, 1, 7));
        s.run();
        let d = &s.decisions(NodeId(3))[0];
        // Ireland's classic quorum (itself + Frankfurt + Virginia) is ~75 ms
        // RTT away at worst; one Accept round should be well under 100 ms.
        assert!(d.latency() < 100_000, "latency was {}", d.latency());
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 1);
        }
    }

    #[test]
    fn remote_command_pays_the_forwarding_hop() {
        let mut s = sim(NodeId(3));
        s.schedule_command(0, NodeId(4), put(4, 1, 7)); // Mumbai client, Ireland leader
        s.run();
        let d_origin = s
            .decisions(NodeId(4))
            .iter()
            .find(|d| d.command.origin() == NodeId(4))
            .expect("executed at origin");
        // Must include the Mumbai→Ireland forward (61 ms one-way) plus the
        // leader's quorum round and the commit propagation back.
        assert!(d_origin.latency() > 120_000, "latency was {}", d_origin.latency());
        assert_eq!(s.process(NodeId(4)).metrics().forwarded, 1);
    }

    #[test]
    fn slots_execute_in_order_on_every_replica() {
        let mut s = sim(NodeId(3));
        for i in 0..10u64 {
            s.schedule_command(i * 1_000, NodeId((i % 5) as u32), put((i % 5) as u32, i, 7));
        }
        s.run();
        let reference: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 10);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = s.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "total order must be identical at {node}");
        }
        assert_eq!(s.process(NodeId(3)).metrics().committed_slots, 10);
    }

    #[test]
    fn faraway_leader_increases_latency_for_everyone() {
        let run = |leader: NodeId| {
            let mut s = sim(leader);
            s.schedule_command(0, NodeId(0), put(0, 1, 7));
            s.run();
            s.decisions(NodeId(0))
                .iter()
                .find(|d| d.command.origin() == NodeId(0))
                .map(|d| d.latency())
                .unwrap()
        };
        let ireland = run(NodeId(3));
        let mumbai = run(NodeId(4));
        assert!(
            mumbai > ireland,
            "a Mumbai leader ({mumbai}) must be slower than an Ireland leader ({ireland})"
        );
    }
}
