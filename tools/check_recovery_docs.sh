#!/usr/bin/env bash
# Drift check for docs/RECOVERY.md: dead same-file anchors, dead repo paths,
# and renamed source symbols the chapter leans on all fail the build. Run
# from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=docs/RECOVERY.md
fail=0
if [ ! -f "$doc" ]; then
    echo "FAIL: $doc is missing"
    exit 1
fi

# 1. Every same-file anchor link must match a heading (GitHub-style slugs:
#    lowercase, punctuation stripped, spaces to dashes).
slugs=$(grep -E '^#{1,6} ' "$doc" \
    | sed -E 's/^#+ +//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 -]//g; s/ /-/g')
for anchor in $(grep -oE '\]\(#[a-z0-9-]+\)' "$doc" | sed -E 's/^\]\(#//; s/\)$//' | sort -u); do
    if ! printf '%s\n' "$slugs" | grep -qx "$anchor"; then
        echo "FAIL: dead anchor '#$anchor' in $doc"
        fail=1
    fi
done

# 2. Every backticked repo path must exist.
for path in $(grep -oE '`[a-zA-Z0-9_/.-]+\.(rs|md|toml|sh)`' "$doc" | tr -d '`' | sort -u); do
    if [ ! -e "$path" ]; then
        echo "FAIL: dead path '$path' named in $doc"
        fail=1
    fi
done

# 3. Source symbols the chapter describes must still exist where it says
#    they live — rename one and this forces the doc to follow.
check_sym() { # name, pattern, file
    if ! grep -qE "$2" "$3"; then
        echo "FAIL: $doc drifted — '$1' (pattern '$2') not found in $3"
        fail=1
    fi
}
check_sym WireMessage::SnapshotRequest 'SnapshotRequest' crates/net/src/wire.rs
check_sym WireMessage::SnapshotChunk 'SnapshotChunk' crates/net/src/wire.rs
check_sym Process::on_state_transfer 'fn on_state_transfer' crates/simnet/src/process.rs
check_sym Process::execution_cursor 'fn execution_cursor' crates/simnet/src/process.rs
check_sym StateTransfer 'pub struct StateTransfer' crates/types/src/transfer.rs
check_sym AppliedSummary 'pub struct AppliedSummary' crates/types/src/transfer.rs
check_sym ExecutionCursor 'pub enum ExecutionCursor' crates/types/src/transfer.rs
check_sym checkpoint_interval 'checkpoint_interval' crates/net/src/replica.rs
check_sym catch_up_timeout 'catch_up_timeout' crates/net/src/replica.rs
check_sym restart_replica 'fn restart_replica' crates/net/src/cluster.rs
check_sym wait_for_applied 'fn wait_for_applied' crates/net/src/cluster.rs

# 4. The chapter must stay included in the umbrella crate's rustdoc, which
#    is what keeps `cargo doc -D warnings` rendering it.
if ! grep -q 'include_str!("../docs/RECOVERY.md")' src/lib.rs; then
    echo "FAIL: docs/RECOVERY.md is no longer included from src/lib.rs"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "docs/RECOVERY.md: anchors, paths and symbols all resolve"
fi
exit "$fail"
