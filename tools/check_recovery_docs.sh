#!/usr/bin/env bash
# Drift check for the prose chapters (docs/RECOVERY.md, docs/DURABILITY.md,
# docs/OBSERVABILITY.md): dead same-file anchors, dead repo paths, and
# renamed source symbols a chapter leans on all fail the build. Run from
# anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Shared structural checks for one chapter: anchors, paths, rustdoc
# inclusion.
check_doc() { # doc
    local doc=$1
    if [ ! -f "$doc" ]; then
        echo "FAIL: $doc is missing"
        fail=1
        return
    fi

    # 1. Every same-file anchor link must match a heading (GitHub-style
    #    slugs: lowercase, punctuation stripped, spaces to dashes).
    local slugs
    slugs=$(grep -E '^#{1,6} ' "$doc" \
        | sed -E 's/^#+ +//' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E 's/[^a-z0-9 -]//g; s/ /-/g')
    local anchor
    for anchor in $(grep -oE '\]\(#[a-z0-9-]+\)' "$doc" | sed -E 's/^\]\(#//; s/\)$//' | sort -u); do
        if ! printf '%s\n' "$slugs" | grep -qx "$anchor"; then
            echo "FAIL: dead anchor '#$anchor' in $doc"
            fail=1
        fi
    done

    # 2. Every backticked repo path must exist.
    local path
    for path in $(grep -oE '`[a-zA-Z0-9_/.-]+\.(rs|md|toml|sh|json)`' "$doc" | tr -d '`' | sort -u); do
        case "$path" in
        BENCH_*.json) continue ;; # bench outputs; regenerated, may be absent
        esac
        if [ ! -e "$path" ]; then
            echo "FAIL: dead path '$path' named in $doc"
            fail=1
        fi
    done

    # 3. The chapter must stay included in the umbrella crate's rustdoc,
    #    which is what keeps `cargo doc -D warnings` rendering it.
    if ! grep -q "include_str!(\"../$doc\")" src/lib.rs; then
        echo "FAIL: $doc is no longer included from src/lib.rs"
        fail=1
    fi
}

# Source symbols a chapter describes must still exist where it says they
# live — rename one and this forces the doc to follow.
check_sym() { # doc, name, pattern, file
    if ! grep -qE "$3" "$4"; then
        echo "FAIL: $1 drifted — '$2' (pattern '$3') not found in $4"
        fail=1
    fi
}

doc=docs/RECOVERY.md
check_doc "$doc"
check_sym "$doc" WireMessage::SnapshotRequest 'SnapshotRequest' crates/net/src/wire.rs
check_sym "$doc" WireMessage::SnapshotChunk 'SnapshotChunk' crates/net/src/wire.rs
check_sym "$doc" Process::on_state_transfer 'fn on_state_transfer' crates/simnet/src/process.rs
check_sym "$doc" Process::execution_cursor 'fn execution_cursor' crates/simnet/src/process.rs
check_sym "$doc" StateTransfer 'pub struct StateTransfer' crates/types/src/transfer.rs
check_sym "$doc" AppliedSummary 'pub struct AppliedSummary' crates/types/src/transfer.rs
check_sym "$doc" ExecutionCursor 'pub enum ExecutionCursor' crates/types/src/transfer.rs
check_sym "$doc" checkpoint_interval 'checkpoint_interval' crates/net/src/replica.rs
check_sym "$doc" catch_up_timeout 'catch_up_timeout' crates/net/src/replica.rs
check_sym "$doc" restart_replica 'fn restart_replica' crates/net/src/cluster.rs
check_sym "$doc" wait_for_applied 'fn wait_for_applied' crates/net/src/cluster.rs

doc=docs/DURABILITY.md
check_doc "$doc"
check_sym "$doc" Wal 'pub struct Wal' crates/wal/src/store.rs
check_sym "$doc" Wal::open 'pub fn open' crates/wal/src/store.rs
check_sym "$doc" Wal::append_checkpoint 'pub fn append_checkpoint' crates/wal/src/store.rs
check_sym "$doc" FsyncPolicy 'pub enum FsyncPolicy' crates/wal/src/store.rs
check_sym "$doc" WalConfig::segment_max_bytes 'segment_max_bytes' crates/wal/src/store.rs
check_sym "$doc" Recovery 'pub struct Recovery' crates/wal/src/store.rs
check_sym "$doc" WalStats 'pub struct WalStats' crates/wal/src/store.rs
check_sym "$doc" wal.torn_truncations 'wal\.torn_truncations' crates/wal/src/store.rs
check_sym "$doc" wal.replayed 'wal\.replayed' crates/wal/src/store.rs
check_sym "$doc" WalRecord 'pub enum WalRecord' crates/wal/src/record.rs
check_sym "$doc" crc32 'pub fn crc32' crates/types/src/checksum.rs
check_sym "$doc" NetReplicaConfig::data_dir 'pub data_dir' crates/net/src/replica.rs
check_sym "$doc" NetConfig::with_data_dir 'pub fn with_data_dir' crates/net/src/cluster.rs
check_sym "$doc" NetCluster::power_cycle 'pub fn power_cycle' crates/net/src/cluster.rs
check_sym "$doc" consensus_node--data-dir '"--data-dir"' src/bin/consensus_node.rs

doc=docs/OBSERVABILITY.md
check_doc "$doc"
check_sym "$doc" Registry 'pub struct Registry' crates/telemetry/src/registry.rs
check_sym "$doc" RegistrySnapshot 'pub struct RegistrySnapshot' crates/telemetry/src/registry.rs
check_sym "$doc" Counter 'pub struct Counter' crates/telemetry/src/metric.rs
check_sym "$doc" Gauge 'pub struct Gauge' crates/telemetry/src/metric.rs
check_sym "$doc" Histogram 'pub struct Histogram' crates/telemetry/src/metric.rs
check_sym "$doc" SpanRing 'pub struct SpanRing' crates/telemetry/src/span.rs
check_sym "$doc" TracePhase 'pub enum TracePhase' crates/telemetry/src/span.rs
check_sym "$doc" trace::assemble 'pub fn assemble' crates/telemetry/src/trace.rs
check_sym "$doc" trace::phase_breakdown 'pub fn phase_breakdown' crates/telemetry/src/trace.rs
check_sym "$doc" Process::telemetry 'fn telemetry' crates/simnet/src/process.rs
check_sym "$doc" Context::trace 'pub fn trace' crates/simnet/src/process.rs
check_sym "$doc" WireMessage::StatsRequest 'StatsRequest' crates/net/src/wire.rs
check_sym "$doc" Event::StatsReply 'StatsReply' crates/net/src/wire.rs
check_sym "$doc" scrape_stats 'pub fn scrape_stats' crates/net/src/client.rs
check_sym "$doc" fetch_stats 'pub fn fetch_stats' crates/net/src/client.rs
check_sym "$doc" consensus_node--stats '"--stats"' src/bin/consensus_node.rs

doc=docs/THROUGHPUT.md
check_doc "$doc"
check_sym "$doc" BatchConfig 'pub struct BatchConfig' crates/session/src/batch.rs
check_sym "$doc" Batcher::coalesce 'pub fn coalesce' crates/session/src/batch.rs
check_sym "$doc" Batcher::reseed 'pub fn reseed' crates/session/src/batch.rs
check_sym "$doc" BATCH_LANE 'pub const BATCH_LANE' crates/types/src/command.rs
check_sym "$doc" Command::batch 'pub fn batch' crates/types/src/command.rs
check_sym "$doc" Command::leaves 'pub fn leaves' crates/types/src/command.rs
check_sym "$doc" Executor 'pub struct Executor' crates/session/src/exec.rs
check_sym "$doc" Executor::apply_round 'pub fn apply_round' crates/session/src/exec.rs
check_sym "$doc" StateMachine::partitionable 'fn partitionable' crates/session/src/state_machine.rs
check_sym "$doc" StateMachine::split_snapshot 'fn split_snapshot' crates/session/src/state_machine.rs
check_sym "$doc" StateMachine::merge_snapshot 'fn merge_snapshot' crates/session/src/state_machine.rs
check_sym "$doc" NetConfig::with_batch 'pub fn with_batch' crates/net/src/cluster.rs
check_sym "$doc" NetConfig::with_exec_workers 'pub fn with_exec_workers' crates/net/src/cluster.rs
check_sym "$doc" ClusterConfig::with_batch 'pub fn with_batch' crates/cluster/src/lib.rs
check_sym "$doc" SimConfig::with_batch 'pub fn with_batch' crates/simnet/src/sim.rs
check_sym "$doc" batch.assembled 'batch\.assembled' crates/net/src/replica.rs
check_sym "$doc" wal.fsyncs 'wal\.fsyncs' crates/wal/src/store.rs

if [ "$fail" -eq 0 ]; then
    echo "docs/RECOVERY.md + docs/DURABILITY.md + docs/OBSERVABILITY.md + docs/THROUGHPUT.md: anchors, paths and symbols all resolve"
fi
exit "$fail"
