//! Conflict sweep: regenerate a compact version of Figure 6 (per-site latency
//! vs conflict percentage) and Figure 10 (slow-decision percentage) from the
//! command line.
//!
//! ```text
//! cargo run --release --example conflict_sweep            # default scale
//! cargo run --release --example conflict_sweep -- 1.0     # paper-scale durations
//! ```

use harness::{fig10_slow_paths, fig6_latency_conflicts};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let conflicts = [0.0, 2.0, 10.0, 30.0, 50.0, 100.0];

    println!("Running the conflict sweep at scale {scale} (1.0 = paper-scale durations)\n");

    let fig6 = fig6_latency_conflicts(scale, &conflicts);
    println!("{}", fig6.to_table("conflict %"));

    let fig10 = fig10_slow_paths(scale, &conflicts);
    println!("{}", fig10.to_table());

    // Print the headline comparison the paper makes at 30% conflicts.
    let caesar_30 = fig10
        .rows
        .iter()
        .find(|r| r.protocol == "Caesar" && r.conflict_percent == 30.0)
        .expect("caesar row");
    let epaxos_30 = fig10
        .rows
        .iter()
        .find(|r| r.protocol == "EPaxos" && r.conflict_percent == 30.0)
        .expect("epaxos row");
    if caesar_30.slow_percent > 0.0 {
        println!(
            "At 30% conflicting commands, CAESAR takes {:.1}x fewer slow decisions than EPaxos \
             ({:.1}% vs {:.1}%).",
            epaxos_30.slow_percent / caesar_30.slow_percent.max(0.1),
            caesar_30.slow_percent,
            epaxos_30.slow_percent
        );
    } else {
        println!(
            "At 30% conflicting commands, CAESAR took no slow decisions at all (EPaxos: {:.1}%).",
            epaxos_30.slow_percent
        );
    }
}
