//! Failure recovery: reproduce Figure 12 — one replica crashes mid-run, the
//! other replicas take over its in-flight commands, and throughput recovers
//! within a few seconds.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use harness::{fig12_recovery, RecoveryTimeline};

fn main() {
    let clients_per_node = 40;
    let crash_at_s = 8;
    let total_seconds = 20;

    println!(
        "Running the crash experiment: {clients_per_node} closed-loop clients per node, \
         Virginia crashes at t = {crash_at_s} s, {total_seconds} s total.\n"
    );

    let timelines = fig12_recovery(clients_per_node, crash_at_s, total_seconds, 0x000F_1612);
    println!("{}", RecoveryTimeline::to_table(&timelines));

    for t in &timelines {
        println!(
            "{:<22} before crash: {:>7.0} cmd/s   after recovery: {:>7.0} cmd/s",
            t.protocol.name(),
            t.before_crash_avg(),
            t.tail_avg()
        );
    }
    println!(
        "\nThe dip at t = {crash_at_s} s corresponds to the crashed site's clients disconnecting; \
         the remaining replicas recover its in-flight commands and throughput stabilises."
    );
}
