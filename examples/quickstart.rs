//! Quickstart: run CAESAR on the paper's five-site EC2 topology, submit a few
//! conflicting and non-conflicting commands, and watch every replica agree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{Command, CommandId, DecisionPath, NodeId};
use kvstore::{apply_all, KvStore};
use simnet::{GeoSite, LatencyMatrix, SimConfig, Simulator};

fn main() {
    // 1. Build the five-site cluster with the WAN latencies reported in the paper.
    let latency = LatencyMatrix::ec2_five_sites();
    let config = CaesarConfig::new(5);
    let mut sim =
        Simulator::new(SimConfig::new(latency), |id| CaesarReplica::new(id, config.clone()));

    // 2. Submit commands: three conflicting updates to key 7 from different
    //    continents, plus one private-key update per site.
    sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 100));
    sim.schedule_command(500, NodeId(3), Command::put(CommandId::new(NodeId(3), 1), 7, 300));
    sim.schedule_command(1_000, NodeId(4), Command::put(CommandId::new(NodeId(4), 1), 7, 400));
    for i in 0..5u32 {
        sim.schedule_command(
            2_000 + u64::from(i),
            NodeId(i),
            Command::put(CommandId::new(NodeId(i), 2), 1_000 + u64::from(i), u64::from(i)),
        );
    }

    // 3. Run the simulation to completion.
    sim.run();

    // 4. Every replica executed every command; conflicting ones in the same order.
    println!("CAESAR quickstart — 5 geo-replicated sites\n");
    for site in GeoSite::ALL {
        let node = site.node();
        let decisions = sim.decisions(node);
        println!("site {} ({node}) executed {} commands:", site.label(), decisions.len());
        for d in decisions {
            let path = match d.path {
                DecisionPath::Fast => "fast",
                DecisionPath::SlowRetry => "slow (retry)",
                DecisionPath::SlowProposal => "slow (proposal)",
                DecisionPath::Recovery => "recovered",
                DecisionPath::Ordered => "replicated",
            };
            println!(
                "  {:>8} at ts {}  [{path}] latency {:.1} ms",
                d.command.to_string(),
                d.timestamp,
                d.latency() as f64 / 1000.0
            );
        }
    }

    // 5. Apply the decided sequence to the key-value store of two different
    //    replicas and check they converge to the same state.
    let store_of = |node: NodeId| -> KvStore {
        let mut commands = Vec::new();
        for d in sim.decisions(node) {
            // Rebuild the command payloads from the replica's history.
            if let Some(info) = sim.process(node).history().get(d.command) {
                commands.push(info.cmd.clone());
            }
        }
        apply_all(commands.iter())
    };
    let virginia = store_of(NodeId(0));
    let mumbai = store_of(NodeId(4));
    println!("\nVirginia fingerprint: {:#018x}", virginia.fingerprint());
    println!("Mumbai   fingerprint: {:#018x}", mumbai.fingerprint());
    assert_eq!(virginia.fingerprint(), mumbai.fingerprint(), "replicas must converge");
    println!("\nAll replicas converged to the same key-value state.");
}
