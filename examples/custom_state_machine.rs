//! Plugging a **custom state machine** into a running cluster.
//!
//! The consensus layer decides an order of commands; what that order drives
//! is any implementation of `consensus_core::StateMachine`. This example
//! defines one from scratch — a per-key accumulator that sums every written
//! value instead of overwriting — and runs it through the TCP runtime's
//! session API, then does the same with the built-in `EventLog`:
//!
//! ```text
//! cargo run --release --example custom_state_machine
//! ```
//!
//! The same factory plugs into the other runtimes
//! (`ClusterConfig::with_state_machine`, `SimSession::with_state_machines`)
//! and into a served cluster (`tcp_cluster -- serve 30 log`); snapshot
//! catch-up for restarted replicas works for any implementation because it
//! only uses the trait's `snapshot`/`restore`/`applied_through` surface.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op};
use consensus_core::state_machine::{EventLog, RestoreError, StateMachine};
use consensus_types::{Command, NodeId, Operation};
use net::{NetCluster, NetConfig};

/// A state machine the repo does not ship: every `Put` **adds** its value
/// to the key's running total (think metering counters), and the output is
/// the new total. Deterministic, snapshot-able, and entirely unlike the
/// reference `KvStore`.
#[derive(Debug, Default)]
struct Accumulator {
    totals: BTreeMap<u64, u64>,
    applied: u64,
}

impl StateMachine for Accumulator {
    fn apply(&mut self, cmd: &Command) -> Option<u64> {
        self.applied += 1;
        match (cmd.operation(), cmd.key()) {
            (Operation::Put, Some(key)) => {
                let total = self.totals.entry(key).or_insert(0);
                *total += cmd.value();
                Some(*total)
            }
            (Operation::Get, Some(key)) => self.totals.get(&key).copied(),
            _ => None,
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        // Hand-rolled encoding: applied watermark, entry count, then
        // (key, total) pairs — a BTreeMap iterates deterministically.
        let mut out = Vec::with_capacity(16 + self.totals.len() * 16);
        out.extend_from_slice(&self.applied.to_le_bytes());
        out.extend_from_slice(&(self.totals.len() as u64).to_le_bytes());
        for (&key, &total) in &self.totals {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&total.to_le_bytes());
        }
        out
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        let word = |i: usize| -> Result<u64, RestoreError> {
            snapshot
                .get(i * 8..i * 8 + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| RestoreError::new("snapshot truncated"))
        };
        let applied = word(0)?;
        let entries = word(1)? as usize;
        let mut totals = BTreeMap::new();
        for entry in 0..entries {
            totals.insert(word(2 + entry * 2)?, word(3 + entry * 2)?);
        }
        self.applied = applied;
        self.totals = totals;
        Ok(())
    }

    fn applied_through(&self) -> u64 {
        self.applied
    }

    fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for (&key, &total) in &self.totals {
            acc ^= key.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ total;
        }
        acc
    }

    fn kind(&self) -> &'static str {
        "accumulator"
    }
}

fn main() {
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);

    // --- the custom accumulator over real TCP -------------------------
    let cluster = NetCluster::start(
        NetConfig::new(3).with_state_machine(Arc::new(|_| Box::new(Accumulator::default()))),
        {
            let caesar = caesar.clone();
            move |id| CaesarReplica::new(id, caesar.clone())
        },
    )
    .expect("cluster starts");
    let client = cluster.client(NodeId(0));
    println!("accumulator state machine (output = running total per key):");
    for add in [10u64, 25, 7] {
        let reply = client
            .submit(Op::put(42, add))
            .expect("submits")
            .wait_timeout(Duration::from_secs(20))
            .expect("replies");
        println!("  put(42, +{add})  -> total {:?}", reply.output);
    }
    let read = client
        .submit(Op::get(42))
        .expect("submits")
        .wait_timeout(Duration::from_secs(20))
        .expect("replies");
    assert_eq!(read.output, Some(42), "10 + 25 + 7 accumulated");
    println!("  get(42)       -> {:?}", read.output);
    println!(
        "  replica p0: applied_through={} fingerprint={:#018x}",
        cluster.applied_through(NodeId(0)),
        cluster.state_fingerprint(NodeId(0)),
    );
    cluster.shutdown();

    // --- the built-in EventLog, same cluster API ----------------------
    let cluster = NetCluster::start(
        NetConfig::new(3).with_state_machine(Arc::new(|_| Box::new(EventLog::new()))),
        move |id| CaesarReplica::new(id, caesar.clone()),
    )
    .expect("cluster starts");
    let client = cluster.client(NodeId(1));
    println!("event-log state machine (output = 1-based log position):");
    for i in 1..=3u64 {
        let reply = client
            .submit(Op::put(7, i))
            .expect("submits")
            .wait_timeout(Duration::from_secs(20))
            .expect("replies");
        println!("  put(7, {i})     -> position {:?}", reply.output);
        assert_eq!(reply.output, Some(i));
    }
    cluster.shutdown();
    println!("both state machines served the identical consensus layer — pluggability works");
}
