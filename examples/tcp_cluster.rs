//! TCP face-off: run the protocols over **real loopback sockets** with the
//! paper's five-site EC2 latency matrix emulated by the delay shim, and
//! print a side-by-side comparison.
//!
//! ```text
//! cargo run --release --example tcp_cluster                 # default: 10% scale, 200 cmds
//! cargo run --release --example tcp_cluster -- 50 400       # 50% of EC2 latency, 400 cmds
//! cargo run --release --example tcp_cluster -- serve 30     # serve a cluster for 30 s
//! cargo run --release --example tcp_cluster -- serve 30 log # …executing an event log
//! cargo run --release --example tcp_cluster -- serve 30 kv /tmp/dirs  # …durably
//! ```
//!
//! The `serve` mode starts a 3-node CAESAR cluster on loopback, prints one
//! `listening pI ADDR` line per replica, and keeps the cluster up for the
//! given number of seconds so an **external** process (see the
//! `consensus_client` example) can connect and submit commands over TCP.
//!
//! ## Plugging in a state machine
//!
//! What the served cluster *executes* is pluggable: the optional third
//! `serve` argument picks the `consensus_core::StateMachine` every replica
//! runs — `kv` (default, the `kvstore` reference implementation: replies
//! carry key-value results) or `log` (the `consensus_core::EventLog`:
//! replies carry 1-based log positions). Any custom implementation plugs in
//! the same way in code, via `NetConfig::with_state_machine` — see the
//! `custom_state_machine` example, which defines one from scratch. Snapshot
//! catch-up for crashed-and-restarted replicas works for every
//! implementation, since it only uses the trait's `snapshot`/`restore`
//! surface.
//!
//! An optional fourth `serve` argument names a **data directory**: each
//! replica then keeps a durable write-ahead log in its own subdirectory
//! (`NetConfig::with_data_dir`), and a later `serve` run pointed at the
//! same directory replays those logs on startup — the served cluster comes
//! back with its pre-crash state instead of empty. See `docs/DURABILITY.md`
//! for the log format and recovery order.
//!
//! `serve` still runs all replicas in one process. For the real deployment
//! shape — one replica per OS process (or per host), linked only by an
//! address-book file — use the `consensus_node` binary instead:
//!
//! ```text
//! printf 'protocol caesar\nnode 0 127.0.0.1:7101\nnode 1 127.0.0.1:7102\nnode 2 127.0.0.1:7103\n' > book.txt
//! cargo run --release --bin consensus_node -- book.txt 0 &
//! cargo run --release --bin consensus_node -- book.txt 1 &
//! cargo run --release --bin consensus_node -- book.txt 2 &
//! cargo run --release --example consensus_client -- 127.0.0.1:7101 0
//! ```
//!
//! Any replica of a running cluster — `serve` mode or `consensus_node`
//! processes alike — can be scraped live for its telemetry (fast/slow path
//! counters, transport stats, command-lifecycle spans) without disturbing
//! the consensus core:
//!
//! ```text
//! cargo run --release --bin consensus_node -- --stats 127.0.0.1:7101
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the metric catalogue and the scrape
//! wire flow.
//!
//! This is the socket-runtime counterpart of `protocol_faceoff` (which runs
//! in simulated time): every message here is bincode-framed, crosses a
//! kernel socket, and pays the artificial WAN delay. Latencies printed are
//! wall-clock microseconds scaled back up by the latency scale, so they are
//! directly comparable with the paper's millisecond figures.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{Command, CommandId, DecisionPath, NodeId};
use epaxos::{EpaxosConfig, EpaxosReplica};
use harness::Table;
use net::{DelayShim, NetCluster, NetConfig};
use simnet::{LatencyMatrix, Process};

const NODES: usize = 5;

struct TcpRunStats {
    avg_ms: f64,
    p99_ms: f64,
    fast_percent: Option<f64>,
    frames: u64,
    wall: Duration,
}

/// Drives `commands` client commands through a socket cluster running `make`
/// replicas, with `conflict_percent` of them touching one contended key.
fn run_over_tcp<P>(
    scale: f64,
    commands: usize,
    conflict_percent: f64,
    track_paths: bool,
    make: impl FnMut(NodeId) -> P,
) -> TcpRunStats
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    // Scale 0 means "no WAN emulation": run on raw loopback and report raw
    // wall-clock latencies instead of scaling back by zero.
    let mut net_config = NetConfig::new(NODES);
    if scale > 0.0 {
        net_config = net_config.with_delay(DelayShim::new(LatencyMatrix::ec2_five_sites(), scale));
    }
    let cluster = NetCluster::start(net_config, make).expect("socket cluster starts");

    for i in 0..commands as u64 {
        let origin = NodeId::from_index((i % NODES as u64) as usize);
        // Spread the conflicting commands evenly through the run.
        let conflicting = ((i % 100) as f64) < conflict_percent;
        let key = if conflicting { 1 } else { 1_000 + i };
        cluster
            .submit(origin, Command::put(CommandId::new(origin, i + 1), key, i))
            .expect("submit over TCP");
        // Light pacing keeps the loopback run out of pure-saturation mode.
        std::thread::sleep(Duration::from_micros(500));
    }

    let per_node = cluster.wait_for_all(commands, Duration::from_secs(120));
    let leader_decisions: Vec<_> = per_node
        .iter()
        .enumerate()
        .flat_map(|(index, decisions)| {
            let node = NodeId::from_index(index);
            decisions.iter().filter(move |d| d.command.origin() == node)
        })
        .collect();

    // Scale wall-clock latencies back up to "EC2 equivalent" milliseconds.
    let scale_back = if scale > 0.0 { scale } else { 1.0 };
    let mut latencies_ms: Vec<f64> =
        leader_decisions.iter().map(|d| d.latency() as f64 / 1_000.0 / scale_back).collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let avg_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let p99_ms = latencies_ms
        .get(
            ((latencies_ms.len() as f64 * 0.99) as usize).min(latencies_ms.len().saturating_sub(1)),
        )
        .copied()
        .unwrap_or_default();
    let fast_percent = track_paths.then(|| {
        let fast = leader_decisions.iter().filter(|d| d.path == DecisionPath::Fast).count();
        fast as f64 * 100.0 / leader_decisions.len().max(1) as f64
    });
    let (frames, _, _) = cluster.transport_totals();
    let wall = cluster.elapsed();
    cluster.shutdown();
    TcpRunStats { avg_ms, p99_ms, fast_percent, frames, wall }
}

/// Serves a 3-node loopback cluster for external clients, printing the
/// address book on stdout. `machine` selects the state machine every
/// replica executes: `kv` (reference key-value store) or `log` (append-only
/// event log). With a `data_dir` the replicas write durable WALs under it
/// and replay them on the next `serve` run against the same directory.
fn serve(seconds: u64, machine: &str, data_dir: Option<&str>) {
    const SERVE_NODES: usize = 3;
    let caesar = CaesarConfig::new(SERVE_NODES).with_recovery_timeout(None);
    let mut config = NetConfig::new(SERVE_NODES);
    if let Some(dir) = data_dir {
        config = config.with_data_dir(dir);
    }
    match machine {
        "kv" => {} // the default factory
        "log" => {
            config = config.with_state_machine(std::sync::Arc::new(|_| {
                Box::new(consensus_core::EventLog::new())
            }));
        }
        other => {
            eprintln!("unknown state machine {other:?} — use \"kv\" or \"log\"");
            std::process::exit(2);
        }
    }
    let cluster = NetCluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()))
        .expect("socket cluster starts");
    for index in 0..SERVE_NODES {
        let node = NodeId::from_index(index);
        println!("listening {node} {}", cluster.addr(node));
    }
    match data_dir {
        Some(dir) => println!(
            "serving for {seconds} s ({machine} state machine, durable in {dir}) — connect \
             with consensus_client"
        ),
        None => println!(
            "serving for {seconds} s ({machine} state machine) — connect with consensus_client"
        ),
    }
    use std::io::Write as _;
    std::io::stdout().flush().expect("stdout flushes");
    std::thread::sleep(Duration::from_secs(seconds));
    cluster.shutdown();
    println!("served, shutting down");
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        let seconds: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(30);
        let machine = std::env::args().nth(3).unwrap_or_else(|| "kv".to_string());
        let data_dir = std::env::args().nth(4);
        serve(seconds, &machine, data_dir.as_deref());
        return;
    }
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10.0) / 100.0;
    let commands: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let conflict = 10.0;

    println!(
        "TCP cluster face-off: {NODES} replicas on loopback sockets, EC2 latency matrix \
         at {:.0}% scale, {commands} commands, {conflict}% conflicts\n",
        scale * 100.0
    );

    let mut table = Table::new(
        "Socket runtime: client latency (EC2-equivalent ms) and transport volume",
        &["protocol", "avg (ms)", "p99 (ms)", "fast %", "frames", "wall (s)"],
    );

    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let stats = run_over_tcp(scale, commands, conflict, true, move |id| {
        CaesarReplica::new(id, caesar.clone())
    });
    push_row(&mut table, "caesar", &stats);

    let epaxos = EpaxosConfig::new(NODES).with_recovery_timeout(None);
    let stats = run_over_tcp(scale, commands, conflict, true, move |id| {
        EpaxosReplica::new(id, epaxos.clone())
    });
    push_row(&mut table, "epaxos", &stats);

    println!("{table}");
    println!(
        "Every figure above crossed real kernel sockets: length-prefixed bincode frames,\n\
         persistent peer connections, and the delay shim emulating the five-site WAN.\n\
         Raise the scale argument toward 100 to approach real EC2 round-trip times."
    );
}

fn push_row(table: &mut Table, name: &str, stats: &TcpRunStats) {
    table.push_row(vec![
        name.to_string(),
        format!("{:.1}", stats.avg_ms),
        format!("{:.1}", stats.p99_ms),
        stats.fast_percent.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".to_string()),
        stats.frames.to_string(),
        format!("{:.2}", stats.wall.as_secs_f64()),
    ]);
}
