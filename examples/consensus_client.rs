//! An **external** consensus client: connects to a running `net` replica
//! over TCP, writes a key, reads it back, and prints what it saw.
//!
//! ```text
//! # against a running cluster (e.g. `cargo run --example tcp_cluster -- serve`):
//! cargo run --release --example consensus_client -- 127.0.0.1:PORT [node-index]
//!
//! # self-contained demo: starts its own 3-node loopback cluster, then talks
//! # to it through a real TCP connection like any external process would:
//! cargo run --release --example consensus_client
//! ```
//!
//! The client speaks only the wire protocol — length-prefixed bincode frames
//! carrying `WireMessage::ClientRequest` out and `Event::ClientReply` back —
//! so it needs no knowledge of which consensus protocol the replicas run.
//! The reply to the `Get` carries the value observed at the connected
//! replica (read-your-writes).

use std::net::SocketAddr;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::NodeId;
use net::{NetCluster, NetConfig, ReplicaClient};

const KEY: u64 = 42;

fn run_client(addr: SocketAddr, node: NodeId) {
    // A time-derived sequence base keeps this client's command ids disjoint
    // from other clients of the same replica.
    let seq_base = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(1)
        % 1_000_000_000
        * 1_000;
    let client = ReplicaClient::connect(addr, node, seq_base).unwrap_or_else(|err| {
        eprintln!("failed to connect to {addr}: {err}");
        std::process::exit(1);
    });
    println!("connected to replica {node} at {addr}");

    let value = seq_base ^ 0xCAE5;
    let write = client.put(KEY, value).unwrap_or_else(|err| {
        eprintln!("write failed: {err}");
        std::process::exit(1);
    });
    println!(
        "put k{KEY}={value}: decided via {:?}, latency {:.1} ms",
        write.decision.path,
        write.decision.latency() as f64 / 1_000.0
    );

    let read = client.get(KEY).unwrap_or_else(|err| {
        eprintln!("read failed: {err}");
        std::process::exit(1);
    });
    println!(
        "get k{KEY} -> {:?} (latency {:.1} ms)",
        read.output,
        read.decision.latency() as f64 / 1_000.0
    );
    assert_eq!(read.output, Some(value), "read-your-writes must hold at the submitting replica");
    println!("OK: the read observed the written value over a real TCP round trip.");
    client.shutdown();
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().expect("first argument must be host:port");
            let node_index: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or_default();
            run_client(addr, NodeId::from_index(node_index));
        }
        None => {
            // Demo mode: bring up a local cluster, then act as an external
            // client against it over loopback TCP.
            println!("no address given — starting a 3-node CAESAR cluster on loopback\n");
            let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
            let cluster = NetCluster::start(NetConfig::new(3), move |id| {
                CaesarReplica::new(id, caesar.clone())
            })
            .expect("cluster starts");
            let node = NodeId(0);
            run_client(cluster.addr(node), node);
            cluster.shutdown();
        }
    }
}
