//! Protocol face-off: run all five protocols on the same workload and print a
//! side-by-side comparison (a compact version of Figures 6, 7 and 9).
//!
//! ```text
//! cargo run --release --example protocol_faceoff -- 30     # 30% conflicts
//! ```

use consensus_types::NodeId;
use harness::{run_closed_loop, ProtocolKind, RunConfig, Table, SITE_LABELS};

fn main() {
    let conflict: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30.0);
    let protocols = [
        ProtocolKind::Caesar,
        ProtocolKind::Epaxos,
        ProtocolKind::M2Paxos,
        ProtocolKind::Mencius,
        ProtocolKind::MultiPaxos(NodeId(3)),
        ProtocolKind::MultiPaxos(NodeId(4)),
    ];

    println!("Protocol face-off at {conflict}% conflicting commands (10 clients per site)\n");

    let mut header = vec!["protocol"];
    header.extend(SITE_LABELS);
    header.extend(["avg (ms)", "cmd/s", "slow %"]);
    let mut table = Table::new("Per-site average latency (ms) and total throughput", &header);

    for protocol in protocols {
        let config = RunConfig::latency_defaults(protocol, conflict).with_sim_seconds(4.0);
        let result = run_closed_loop(&config);
        let mut cells = vec![protocol.name()];
        cells.extend(result.per_site_latency_ms.iter().map(|v| format!("{v:.1}")));
        cells.push(format!("{:.1}", result.overall_avg_latency_ms()));
        cells.push(format!("{:.0}", result.throughput_cps));
        cells.push(
            result.slow_path_percent.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".to_string()),
        );
        table.push_row(cells);
    }
    println!("{table}");
    println!(
        "Caesar keeps per-site latency nearly flat as conflicts grow because discordant\n\
         predecessor sets do not force it off the fast path; EPaxos and M2Paxos degrade, and\n\
         the single-leader/slot-based protocols pay their fixed topology costs regardless."
    );
}
